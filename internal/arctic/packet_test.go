package arctic

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPacketEncodeDecodeRoundTrip(t *testing.T) {
	p := &Packet{
		Pri:       High,
		DownRoute: downRouteFor(13),
		UpSteps:   2,
		UpDigits:  0b1101,
		RandomUp:  true,
		Tag:       0x5aa,
		Payload:   []uint32{0xdeadbeef, 0x01020304, 42},
	}
	words, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != HeaderWords+3+1 {
		t.Fatalf("wire words = %d", len(words))
	}
	q, err := Decode(words)
	if err != nil {
		t.Fatal(err)
	}
	if q.Pri != p.Pri || q.DownRoute != p.DownRoute || q.UpSteps != p.UpSteps ||
		q.UpDigits != p.UpDigits || q.RandomUp != p.RandomUp || q.Tag != p.Tag {
		t.Fatalf("header mismatch: %+v vs %+v", q, p)
	}
	if q.Dst != 13 {
		t.Fatalf("Dst = %d, want 13", q.Dst)
	}
	for i := range p.Payload {
		if q.Payload[i] != p.Payload[i] {
			t.Fatalf("payload[%d] = %#x", i, q.Payload[i])
		}
	}
}

func TestPacketEncodeDecodeProperty(t *testing.T) {
	f := func(pri bool, dst uint16, upSteps uint8, upDigits uint16, randomUp bool, tag uint16, seed int64, nWords uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := MinPayloadWords + int(nWords)%(MaxPayloadWords-MinPayloadWords+1)
		payload := make([]uint32, n)
		for i := range payload {
			payload[i] = rng.Uint32()
		}
		p := &Packet{
			DownRoute: dst & 0x3ff,
			UpSteps:   upSteps % (maxUpSteps + 1),
			UpDigits:  upDigits & 0x3ff,
			RandomUp:  randomUp,
			Tag:       tag & 0x7ff,
			Payload:   payload,
		}
		if pri {
			p.Pri = High
		}
		words, err := p.Encode()
		if err != nil {
			return false
		}
		q, err := Decode(words)
		if err != nil {
			return false
		}
		if q.Pri != p.Pri || q.DownRoute != p.DownRoute || q.UpSteps != p.UpSteps ||
			q.UpDigits != p.UpDigits || q.RandomUp != p.RandomUp || q.Tag != p.Tag || len(q.Payload) != n {
			return false
		}
		for i := range payload {
			if q.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketPayloadSizeLimits(t *testing.T) {
	for _, n := range []int{0, 1, 23, 30} {
		p := &Packet{Payload: make([]uint32, n)}
		if _, err := p.Encode(); !errors.Is(err, ErrPayloadSize) {
			t.Fatalf("payload %d words: err = %v, want ErrPayloadSize", n, err)
		}
	}
	for _, n := range []int{2, 22} {
		p := &Packet{Payload: make([]uint32, n)}
		if _, err := p.Encode(); err != nil {
			t.Fatalf("payload %d words: %v", n, err)
		}
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	p := &Packet{Payload: []uint32{1, 2, 3, 4}}
	words, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit anywhere: CRC must catch it.
	for i := range words {
		mutated := append([]uint32(nil), words...)
		mutated[i] ^= 1 << uint(i%32)
		if _, err := Decode(mutated); err == nil {
			t.Fatalf("bit flip in word %d went undetected", i)
		}
	}
}

func TestDecodeShortPacket(t *testing.T) {
	if _, err := Decode([]uint32{1, 2}); err == nil {
		t.Fatal("short packet accepted")
	}
}

func TestWireBytes(t *testing.T) {
	p := &Packet{Payload: make([]uint32, 22)}
	if got := p.WireBytes(); got != (2+22+1)*4 {
		t.Fatalf("WireBytes = %d, want 100", got)
	}
	if got := p.PayloadBytes(); got != 88 {
		t.Fatalf("PayloadBytes = %d, want 88", got)
	}
}

func TestFieldRangeRejected(t *testing.T) {
	p := &Packet{Payload: []uint32{1, 2}, Tag: 0x800}
	if _, err := p.Encode(); !errors.Is(err, ErrFieldRange) {
		t.Fatalf("tag overflow: err = %v", err)
	}
	p = &Packet{Payload: []uint32{1, 2}, UpSteps: maxUpSteps + 1}
	if _, err := p.Encode(); !errors.Is(err, ErrFieldRange) {
		t.Fatalf("upsteps overflow: err = %v", err)
	}
}

func TestDigitHelpers(t *testing.T) {
	if digit(0b110110, 0) != 0b10 || digit(0b110110, 1) != 0b01 || digit(0b110110, 2) != 0b11 {
		t.Fatal("digit extraction wrong")
	}
	if replaceDigit(0b110110, 1, 0b10) != 0b111010 {
		t.Fatalf("replaceDigit = %b", replaceDigit(0b110110, 1, 0b10))
	}
}

// TestWireCRCMatchesByteAtATime pins the slicing-by-4 fold in wireCRC
// to the byte-at-a-time reference (crcUpdateWord, still used by the
// Encode/Decode path): the two must agree on every packet, or sealed
// packets would fail verification at the first router stage.
func TestWireCRCMatchesByteAtATime(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		p := &Packet{
			Src:     trial,
			Dst:     trial * 3 % 16,
			Tag:     uint16(trial * 7),
			Payload: make([]uint32, MinPayloadWords+trial%8),
		}
		for i := range p.Payload {
			p.Payload[i] = uint32(trial*31+i) * 2654435761
		}
		ref := crcUpdateWord(0, p.header0())
		ref = crcUpdateWord(ref, p.header1())
		for _, w := range p.Payload {
			ref = crcUpdateWord(ref, w)
		}
		if got := p.wireCRC(); got != ref {
			t.Fatalf("trial %d: wireCRC %08x != byte-at-a-time %08x", trial, got, ref)
		}
	}
}
