package arctic

import (
	"fmt"
	"math"
	"math/rand"

	"hyades/internal/des"
	"hyades/internal/fault"
	"hyades/internal/units"
)

// Config describes a fat-tree fabric instance.
type Config struct {
	// Endpoints is the number of attached network endpoints (NIUs).
	Endpoints int
	// Levels is the number of router stages.  The fabric's capacity is
	// 4^Levels endpoints; Endpoints may be smaller.  Zero means "just
	// enough stages for Endpoints".
	Levels int
	// LinkBandwidth is the per-direction link rate (paper: 150 MByte/s).
	LinkBandwidth units.Bandwidth
	// RouterLatency is the per-stage forwarding latency (paper: <0.15 us).
	RouterLatency units.Time
	// RandomUpSeed seeds the adaptive up-route generator used for
	// packets with the RandomUp flag set.
	RandomUpSeed int64
	// Faults, when non-nil, injects deterministic link faults: drops,
	// corruption, degradation windows and outages (package fault).
	Faults *fault.Plan
}

// DefaultConfig returns the published Arctic parameters for n endpoints.
func DefaultConfig(n int) Config {
	return Config{
		Endpoints:     n,
		LinkBandwidth: 150 * units.MBps,
		RouterLatency: 150 * units.Nanosecond,
	}
}

// Stats aggregates fabric-wide counters.
type Stats struct {
	Packets        int64 // packets delivered
	PayloadBytes   int64 // payload bytes delivered
	WireBytes      int64 // wire bytes delivered
	Dropped        int64 // packets dropped at a router for bad CRC
	CorruptArrived int64 // corrupted packets that reached an endpoint
	FaultDropped   int64 // packets silently dropped by an injected link fault
	FaultCorrupted int64 // packets corrupted in flight by an injected fault
	OutageDropped  int64 // packets lost to a link outage window
	FailedOver     int64 // up-phase hops re-routed around a downed up-link
}

// LinkStats is the per-link fault counter snapshot (see Fabric.LinkStats).
type LinkStats struct {
	Name          string
	Transmitted   int64 // packets that started crossing the link
	FaultDropped  int64
	Corrupted     int64
	OutageDropped int64
}

// transitQueue is a FIFO ring of transits.  Links queue and dequeue
// packets on every hop of every journey; a ring recycles one buffer in
// steady state where the old append + [1:] idiom leaked front capacity
// and re-grew the slice every few packets — the fabric's dominant
// allocation site before the zero-alloc hunt.
type transitQueue struct {
	buf     []*transit
	head, n int
}

func (q *transitQueue) push(t *transit) {
	if q.n == len(q.buf) {
		grown := make([]*transit, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = t
	q.n++
}

func (q *transitQueue) pop() *transit {
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return t
}

// link is one directed link with two-priority FIFO queueing.
type link struct {
	fab     *Fabric
	name    string
	busy    bool
	queueHi transitQueue
	queueLo transitQueue
	// sink receives the packet when its head has crossed this link;
	// exactly one of nextRouter/endpoint is set.
	deliver func(t *transit)
	final   bool // link terminates at an endpoint: wait for the tail

	// startNextFn is the method value of startNext, bound once at link
	// creation so re-arming the link schedules no closure.
	startNextFn func()

	// flt is the link's fault-injection state (nil = pristine link).
	flt   *fault.Link
	stats LinkStats
}

// down reports whether the link is inside an injected outage window.
func (l *link) down() bool {
	return l.flt != nil && l.flt.Down(l.fab.eng.Now())
}

// transit is a packet in flight.  Transits are recycled through the
// fabric's freelist; deliverFn is bound once per transit object (not
// per hop) and survives recycling.
type transit struct {
	pkt         *Packet
	upRemaining int   // up hops left before the packet turns downwards
	link        *link // link currently transmitting this transit
	deliverFn   func()
}

// router is one Arctic switch.  Its forwarding behaviour is folded into
// the link event chain; the struct records topology for navigation.
type router struct {
	stage int
	index int
	up    []*link // towards the roots, one per up port
	down  []*link // towards the leaves, one per down port
}

// Fabric is the simulated switch fabric.
type Fabric struct {
	eng     *des.Engine
	cfg     Config
	levels  int
	routers [][]*router // [stage][index]
	inject  []*link     // endpoint -> leaf router
	eject   []*link     // leaf router -> endpoint
	links   []*link     // every link in creation order, for LinkStats
	rx      []func(*Packet)
	rng     *rand.Rand
	stats   Stats
	free    []*transit // recycled transit objects
	freePkt []*Packet  // recycled pooled packets (see AcquirePacket)
}

// AcquirePacket returns a zeroed packet from the fabric's freelist (or
// a fresh one), marked so the fabric reclaims it when its journey ends:
// after the endpoint's receive handler returns, or at whichever router
// or link drops it.  Receive handlers must therefore copy out what they
// keep — the payload slice header is fine to move, the *Packet is not.
// Callers that need a packet to outlive delivery (tests, diagnostics)
// should build one directly instead.
func (f *Fabric) AcquirePacket() *Packet {
	if n := len(f.freePkt); n > 0 {
		p := f.freePkt[n-1]
		f.freePkt[n-1] = nil
		f.freePkt = f.freePkt[:n-1]
		return p
	}
	return &Packet{pooled: true}
}

// releasePacket reclaims a pooled packet at the end of its journey.
// Unpooled packets are left alone (their owner may have retained them).
func (f *Fabric) releasePacket(p *Packet) {
	if !p.pooled {
		return
	}
	*p = Packet{pooled: true}
	f.freePkt = append(f.freePkt, p)
}

// newTransit pops the freelist or allocates; the bound deliverFn is
// created once per object and reused across journeys.
func (f *Fabric) newTransit(p *Packet, upRemaining int) *transit {
	if n := len(f.free); n > 0 {
		t := f.free[n-1]
		f.free = f.free[:n-1]
		t.pkt, t.upRemaining = p, upRemaining
		return t
	}
	t := &transit{pkt: p, upRemaining: upRemaining}
	t.deliverFn = func() { t.link.deliver(t) }
	return t
}

// recycle returns a finished transit (delivered or dropped) to the
// freelist.
func (f *Fabric) recycle(t *transit) {
	t.pkt, t.link = nil, nil
	f.free = append(f.free, t)
}

// New builds a fabric for cfg on engine e.
func New(e *des.Engine, cfg Config) (*Fabric, error) {
	if cfg.Endpoints < 1 {
		return nil, fmt.Errorf("arctic: need at least 1 endpoint, got %d", cfg.Endpoints)
	}
	levels := cfg.Levels
	if levels == 0 {
		for capacity := Radix; ; capacity *= Radix {
			levels++
			if capacity >= cfg.Endpoints {
				break
			}
		}
	}
	if levels > maxUpSteps {
		return nil, fmt.Errorf("arctic: %d levels exceeds the %d-stage routing header", levels, maxUpSteps)
	}
	capacity := 1
	for i := 0; i < levels; i++ {
		capacity *= Radix
	}
	if cfg.Endpoints > capacity {
		return nil, fmt.Errorf("arctic: %d endpoints exceed capacity %d of %d-level tree", cfg.Endpoints, capacity, levels)
	}
	f := &Fabric{
		eng:    e,
		cfg:    cfg,
		levels: levels,
		rx:     make([]func(*Packet), cfg.Endpoints),
		rng:    rand.New(rand.NewSource(cfg.RandomUpSeed ^ 0x41524354)), // "ARCT"
	}
	routersPerStage := capacity / Radix
	f.routers = make([][]*router, levels)
	for s := 0; s < levels; s++ {
		f.routers[s] = make([]*router, routersPerStage)
		for i := 0; i < routersPerStage; i++ {
			f.routers[s][i] = &router{stage: s, index: i,
				up:   make([]*link, Radix),
				down: make([]*link, Radix),
			}
		}
	}
	// Inter-stage wiring (folded butterfly): up port q of router (s, i)
	// connects to router (s+1, i with digit_s replaced by q).  The same
	// edge seen from above is down port d of (s+1, j) towards
	// (s, j with digit_s replaced by d).
	for s := 0; s < levels-1; s++ {
		for i, r := range f.routers[s] {
			for q := 0; q < Radix; q++ {
				j := replaceDigit(i, s, q)
				upper := f.routers[s+1][j]
				upLink := f.newLink(fmt.Sprintf("up(s%d,%d,p%d)", s, i, q))
				dnLink := f.newLink(fmt.Sprintf("down(s%d,%d,p%d)", s+1, j, digit(i, s)))
				r.up[q] = upLink
				upper.down[digit(i, s)] = dnLink
				upLink.deliver = f.routerInput(upper)
				dnLink.deliver = f.routerInput(r)
			}
		}
	}
	// Endpoint wiring.
	f.inject = make([]*link, cfg.Endpoints)
	f.eject = make([]*link, cfg.Endpoints)
	for ep := 0; ep < cfg.Endpoints; ep++ {
		leaf := f.routers[0][ep/Radix]
		in := f.newLink(fmt.Sprintf("inject(%d)", ep))
		in.deliver = f.routerInput(leaf)
		f.inject[ep] = in
		out := f.newLink(fmt.Sprintf("eject(%d)", ep))
		out.final = true
		epCopy := ep
		out.deliver = func(t *transit) {
			pkt := t.pkt
			f.recycle(t)
			f.deliverToEndpoint(epCopy, pkt)
		}
		f.eject[ep] = out
		// The leaf router's down port for this endpoint is the eject
		// link; down-phase forwarding finds it there.
		leaf.down[ep%Radix] = out
	}
	return f, nil
}

// replaceDigit returns v with its 2-bit digit at the given stage set to q.
func replaceDigit(v, stage, q int) int {
	shift := 2 * stage
	return v&^((Radix-1)<<shift) | q<<shift
}

func (f *Fabric) newLink(name string) *link {
	l := &link{fab: f, name: name}
	l.startNextFn = l.startNext
	l.stats.Name = name
	if f.cfg.Faults != nil {
		l.flt = f.cfg.Faults.Link(name)
	}
	f.links = append(f.links, l)
	return l
}

// Engine returns the simulation engine the fabric runs on.
func (f *Fabric) Engine() *des.Engine { return f.eng }

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Stats returns a snapshot of the fabric counters.
func (f *Fabric) Stats() Stats { return f.stats }

// LinkStats returns per-link counters for every link that saw at least
// one injected fault, in deterministic link-creation order.
func (f *Fabric) LinkStats() []LinkStats {
	var out []LinkStats
	for _, l := range f.links {
		if l.stats.FaultDropped > 0 || l.stats.Corrupted > 0 || l.stats.OutageDropped > 0 {
			out = append(out, l.stats)
		}
	}
	return out
}

// Attach registers the receive handler for an endpoint.  The handler
// runs in engine context at the packet's delivery time.
func (f *Fabric) Attach(endpoint int, rx func(*Packet)) {
	f.rx[endpoint] = rx
}

// RouteFor fills in the routing header fields of p for a src->dst
// journey, choosing a deterministic up path (so that all packets between
// the same pair follow the same path and arrive in FIFO order, as the
// paper's software layer assumes).  Packets with RandomUp set get an
// adaptive path chosen at injection time instead.
func (f *Fabric) RouteFor(p *Packet, src, dst int) {
	p.Src, p.Dst = src, dst
	p.DownRoute = downRouteFor(dst)
	up := 0
	for a, b := src/Radix, dst/Radix; a != b; a, b = a/Radix, b/Radix {
		up++
	}
	p.UpSteps = uint8(up)
	if up == 0 {
		p.UpDigits = 0
		return
	}
	if p.RandomUp {
		p.UpDigits = uint16(f.rng.Intn(1 << (2 * up)))
		return
	}
	// Deterministic spread: ascend along the source's own digits.  All
	// packets of a pair share one path (preserving FIFO order), and the
	// four endpoints under a leaf router fan out over the four up ports,
	// so shift-by-constant patterns (exchange with a fixed neighbour,
	// butterfly global-sum rounds) see no up-link contention — matching
	// the paper's "undiminished pair-wise bandwidth" observation (§4.1).
	p.UpDigits = uint16(src) & (1<<(2*up) - 1)
}

// Inject hands a packet to the fabric at the current virtual time.  The
// packet must already carry routing fields (see RouteFor).  Injection
// models the NIU driving the endpoint's up-link.
func (f *Fabric) Inject(src int, p *Packet) {
	if p.Dst < 0 || p.Dst >= f.cfg.Endpoints {
		panic(fmt.Sprintf("arctic: inject to invalid endpoint %d", p.Dst))
	}
	p.Seal()
	f.inject[src].enqueue(f.newTransit(p, int(p.UpSteps)))
}

// routerInput returns the forwarding action for packets whose head has
// arrived at r: consume routing state, verify CRC, and drive the next
// link after the router latency.
func (f *Fabric) routerInput(r *router) func(*transit) {
	return func(t *transit) {
		if !t.pkt.checkCRC() {
			// Paper §2.2: correctness is verified at every router
			// stage; a corrupted packet cannot propagate silently.
			f.stats.Dropped++
			f.releasePacket(t.pkt)
			f.recycle(t)
			return
		}
		var next *link
		if t.upRemaining > 0 {
			q := digit(int(t.pkt.UpDigits), r.stage)
			t.upRemaining--
			next = r.up[q]
			if next != nil && next.down() {
				// Adaptive fail-over: in a fat tree every up port leads
				// to a router that still covers the destination's
				// subtree, so a faulted up-link can be routed around.
				// Scan the remaining ports in deterministic order; if
				// every up-link is down the packet stays on the chosen
				// one and is lost to the outage (counted there).
				for i := 1; i < Radix; i++ {
					alt := r.up[(q+i)%Radix]
					if alt != nil && !alt.down() {
						next = alt
						f.stats.FailedOver++
						break
					}
				}
			}
		} else {
			// The down path is fully determined by the destination
			// digits (Fig. 1): there is exactly one route, so a downed
			// down-link surfaces as packet loss, never as misrouting.
			d := digit(t.pkt.Dst, r.stage)
			next = r.down[d]
		}
		if next == nil {
			panic(fmt.Sprintf("arctic: no route at router s%d/%d for packet %d->%d", r.stage, r.index, t.pkt.Src, t.pkt.Dst))
		}
		next.enqueue(t)
	}
}

// deliverToEndpoint completes a packet's journey.
func (f *Fabric) deliverToEndpoint(ep int, p *Packet) {
	if p.Dst != ep {
		panic(fmt.Sprintf("arctic: misrouted packet %d->%d arrived at %d", p.Src, p.Dst, ep))
	}
	if !p.checkCRC() {
		// The endpoint NIU also checks CRC; software sees a status bit.
		f.stats.CorruptArrived++
	}
	f.stats.Packets++
	f.stats.PayloadBytes += int64(p.PayloadBytes())
	f.stats.WireBytes += int64(p.WireBytes())
	if rx := f.rx[ep]; rx != nil {
		rx(p)
	}
	f.releasePacket(p)
}

// enqueue places a transit on the link, starting transmission if idle.
// High-priority packets overtake queued low-priority ones but do not
// preempt a transmission in progress.
func (l *link) enqueue(t *transit) {
	if t.pkt.Pri == High {
		l.queueHi.push(t)
	} else {
		l.queueLo.push(t)
	}
	if !l.busy {
		l.startNext()
	}
}

// startNext begins transmitting the best queued packet, if any.
func (l *link) startNext() {
	var t *transit
	switch {
	case l.queueHi.n > 0:
		t = l.queueHi.pop()
	case l.queueLo.n > 0:
		t = l.queueLo.pop()
	default:
		l.busy = false
		return
	}
	l.busy = true
	f := l.fab
	l.stats.Transmitted++
	bw, lat := f.cfg.LinkBandwidth, f.cfg.RouterLatency
	if l.flt != nil {
		now := f.eng.Now()
		if l.flt.Down(now) {
			// Whole-link outage: the packet vanishes at the head of the
			// wire.  Try the next queued packet immediately (it too will
			// be lost while the outage lasts, in FIFO order).
			l.stats.OutageDropped++
			f.stats.OutageDropped++
			f.releasePacket(t.pkt)
			f.recycle(t)
			f.eng.Schedule(0, l.startNextFn)
			return
		}
		if bwScale, latScale := l.flt.Scale(now); bwScale != 1 || latScale != 1 {
			bw = units.Bandwidth(float64(bw) * bwScale)
			lat = units.Time(math.Round(float64(lat) * latScale))
		}
		switch l.flt.Transmit(now) {
		case fault.Drop:
			// The packet occupies the wire for its full length but its
			// tail never arrives anywhere.
			l.stats.FaultDropped++
			f.stats.FaultDropped++
			f.eng.Schedule(bw.Transfer(t.pkt.WireBytes()), l.startNextFn)
			f.releasePacket(t.pkt)
			f.recycle(t)
			return
		case fault.Corrupt:
			t.pkt.Corrupt()
			l.stats.Corrupted++
			f.stats.FaultCorrupted++
		}
	}
	full := bw.Transfer(t.pkt.WireBytes())
	// Virtual cut-through: the downstream hop sees the packet head after
	// the router latency plus the header serialization; the link itself
	// stays occupied for the full wire size.  The final hop into an
	// endpoint completes only when the tail arrives.
	head := lat + bw.Transfer(HeaderBytes)
	handoff := head
	if l.final {
		handoff = lat + full
	}
	t.link = l
	f.eng.Schedule(handoff, t.deliverFn)
	f.eng.Schedule(full, l.startNextFn)
}

// Levels reports the number of router stages.
func (f *Fabric) Levels() int { return f.levels }

// HopsBetween returns the number of links a packet crosses from src to
// dst (injection and ejection links included).
func (f *Fabric) HopsBetween(src, dst int) int {
	up := 0
	for a, b := src/Radix, dst/Radix; a != b; a, b = a/Radix, b/Radix {
		up++
	}
	return 2 + 2*up // inject + eject + up/down inter-stage links
}
