// Package arctic simulates the Arctic Switch Fabric, the system-area
// network of the Hyades cluster (paper §2.2).
//
// Arctic is a packet-switched, multi-stage network of radix-4 routers
// organised as a fat tree.  The simulator reproduces the properties the
// paper's communication library depends on:
//
//   - 150 MByte/sec of bandwidth per link direction, with a full
//     fat-tree bisection of 2*N*150 MByte/sec for N endpoints;
//   - less than 0.15 us of latency through a router stage (we charge
//     exactly 0.15 us), with virtual cut-through forwarding;
//   - FIFO ordering of packets sent between two endpoints along the same
//     path;
//   - two packet priorities, with the guarantee that a high-priority
//     packet is never blocked behind low-priority traffic at a link;
//   - CRC protection verified at every router stage and at the endpoint,
//     so that software sees error-free operation and only checks a 1-bit
//     status word for the catastrophic case.
package arctic

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Priority selects one of Arctic's two logical networks (Fig. 1a).
type Priority uint8

// The two Arctic priorities.
const (
	Low Priority = iota
	High
)

func (p Priority) String() string {
	if p == High {
		return "high"
	}
	return "low"
}

// Packet format constants (Fig. 1b): two 32-bit header words followed by
// a payload of 2..22 32-bit words, protected by a CRC trailer word.
const (
	MinPayloadWords = 2
	MaxPayloadWords = 22
	HeaderWords     = 2
	crcWords        = 1

	// HeaderBytes is the wire size of the routing header; cut-through
	// forwarding can begin once these bytes have arrived.
	HeaderBytes = HeaderWords * 4

	// MaxPayloadBytes is the largest payload a single packet carries.
	MaxPayloadBytes = MaxPayloadWords * 4
)

// Radix is the Arctic router radix: four down ports and four up ports.
const Radix = 4

// maxUpSteps is the largest up-phase length encodable in the 14-bit
// uproute field (3 bits of step count + 2 bits of up-port digit per
// stage); it caps fabrics at 4^5 = 1024 endpoints, far beyond the
// 16-node Hyades configuration.
const maxUpSteps = 5

// Packet is one Arctic network packet.
type Packet struct {
	Pri       Priority
	DownRoute uint16 // destination digits, 2 bits per stage, LSB = leaf stage
	UpSteps   uint8  // number of up-phase hops (0 for same leaf router)
	UpDigits  uint16 // chosen up port per up stage, 2 bits per stage
	RandomUp  bool   // hardware picks up-ports randomly (adaptive)
	Tag       uint16 // 11-bit user tag, dispatch hint for the software layer
	Payload   []uint32

	// Src and Dst are endpoint numbers.  Dst is recoverable from
	// DownRoute; both are kept explicit for bookkeeping and assertions.
	Src, Dst int

	// VI-mode bulk packets: the StarT-X DMA engines move user data in
	// packet-sized quanta, but the simulator carries the actual bytes
	// out-of-band on the final packet of a transfer instead of encoding
	// 88-byte slices into every packet.  BulkWords is the modelled
	// payload size of this packet (used for wire timing); Bulk is the
	// whole transfer's data, attached to the packet with Final set.
	BulkWords int
	Bulk      []byte
	Final     bool

	// Rmem marks a one-sided remote-memory packet (StarT-X's third
	// mechanism) whose destination is (window = Tag's low bits,
	// RmemOffset); like Bulk these are simulator bookkeeping, not
	// wire-header state.
	Rmem       bool
	RmemOffset int

	// Rel carries the reliable-channel header when the go-back-N layer
	// is active.  Like Bulk it is simulator bookkeeping riding alongside
	// the wire words; its wire cost is accounted in the tag space.
	Rel *RelHeader

	// Epoch stamps the sending NIU's communication incarnation: after a
	// node crash and recovery rollback every NIU re-synchronizes on a
	// new epoch, and traffic still in flight from before the rollback is
	// discarded at the receiver.  HB marks an unsequenced heartbeat
	// packet, consumed by dead-peer detection and never delivered to
	// software.  Both are simulator bookkeeping like Rel.
	Epoch uint32
	HB    bool

	// crc is the checksum computed at injection time.  corrupted marks
	// packets damaged by fault injection after the CRC was sealed;
	// sealed records whether crc is valid at all.
	crc       uint32
	sealed    bool
	corrupted bool

	// pooled marks a packet obtained from a Fabric freelist
	// (Fabric.AcquirePacket); the fabric recycles such packets once
	// their journey ends.  Packets constructed directly (tests, one-off
	// probes) stay unpooled and are left to the garbage collector, so a
	// caller that retains a delivered packet it built itself never sees
	// it reused under its feet.
	pooled bool
}

// RelHeader is the go-back-N protocol state attached to a packet by the
// StarT-X reliability layer.
type RelHeader struct {
	Seq    uint64   // per-(src,dst,priority) sequence number of data packets
	Ack    bool     // this packet is a cumulative acknowledgement, not data
	AckSeq uint64   // with Ack: everything below AckSeq has been received
	Chan   Priority // which priority stream the sequence number belongs to
}

// Clone returns a fresh copy of the packet for retransmission: same
// routing, payload and sequence state, but pristine (uncorrupted) and
// re-sealed, as the NIU re-reads the data from host memory.
func (p *Packet) Clone() *Packet {
	q := *p
	q.corrupted = false
	// The clone is fabric-owned from injection to delivery (the
	// retransmitting NIU never sees it again), so the fabric may pool it
	// regardless of where the original came from.
	q.pooled = true
	if p.Rel != nil {
		rel := *p.Rel
		q.Rel = &rel
	}
	q.Seal()
	return &q
}

// payloadWords returns the modelled payload size in words, honouring
// the out-of-band bulk convention.
func (p *Packet) payloadWords() int {
	if p.BulkWords > 0 {
		return p.BulkWords
	}
	return len(p.Payload)
}

// WireBytes returns the number of bytes the packet occupies on a link:
// header, payload and CRC trailer.
func (p *Packet) WireBytes() int {
	return (HeaderWords + p.payloadWords() + crcWords) * 4
}

// PayloadBytes returns the user-payload size in bytes.
func (p *Packet) PayloadBytes() int { return p.payloadWords() * 4 }

// Errors returned by header validation.
var (
	ErrPayloadSize = errors.New("arctic: payload must be 2..22 words")
	ErrBadCRC      = errors.New("arctic: CRC mismatch")
	ErrFieldRange  = errors.New("arctic: header field out of range")
)

// header0 packs priority and downroute into the first header word.
func (p *Packet) header0() uint32 {
	w := uint32(p.DownRoute)
	if p.Pri == High {
		w |= 1 << 31
	}
	return w
}

// header1 packs uproute, the random-up flag, the user tag and the size
// field into the second header word:
//
//	[31:21] up-port digits (10 bits + 1 spare)
//	[20:18] up-step count (3 bits)
//	[17]    random-up flag
//	[16:6]  user tag (11 bits)
//	[5:1]   payload size in words (5 bits)
//	[0]     spare
func (p *Packet) header1() uint32 {
	return uint32(p.UpDigits&0x3ff)<<22 |
		uint32(p.UpSteps&0x7)<<18 |
		boolBit(p.RandomUp)<<17 |
		uint32(p.Tag&0x7ff)<<6 |
		uint32(len(p.Payload)&0x1f)<<1
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Encode serializes the packet to wire words (header, payload, CRC) and
// seals the CRC.  It returns an error if a field is out of range.
func (p *Packet) Encode() ([]uint32, error) {
	if len(p.Payload) < MinPayloadWords || len(p.Payload) > MaxPayloadWords {
		return nil, fmt.Errorf("%w: %d", ErrPayloadSize, len(p.Payload))
	}
	if p.Tag > 0x7ff || p.UpSteps > maxUpSteps || p.UpDigits > 0x3ff {
		return nil, ErrFieldRange
	}
	words := make([]uint32, 0, HeaderWords+len(p.Payload)+crcWords)
	words = append(words, p.header0(), p.header1())
	words = append(words, p.Payload...)
	p.crc = crcOfWords(words)
	p.sealed = true
	words = append(words, p.crc)
	return words, nil
}

// Decode reconstructs a packet from wire words, verifying the CRC.
func Decode(words []uint32) (*Packet, error) {
	if len(words) < HeaderWords+MinPayloadWords+crcWords {
		return nil, fmt.Errorf("arctic: short packet (%d words)", len(words))
	}
	body := words[:len(words)-1]
	crc := words[len(words)-1]
	if crcOfWords(body) != crc {
		return nil, ErrBadCRC
	}
	h0, h1 := words[0], words[1]
	size := int(h1 >> 1 & 0x1f)
	if size < MinPayloadWords || size > MaxPayloadWords || HeaderWords+size+crcWords != len(words) {
		return nil, fmt.Errorf("%w: size field %d for %d words", ErrPayloadSize, size, len(words))
	}
	p := &Packet{
		Pri:       Priority(h0 >> 31),
		DownRoute: uint16(h0 & 0xffff),
		UpDigits:  uint16(h1 >> 22 & 0x3ff),
		UpSteps:   uint8(h1 >> 18 & 0x7),
		RandomUp:  h1>>17&1 == 1,
		Tag:       uint16(h1 >> 6 & 0x7ff),
		Payload:   append([]uint32(nil), words[HeaderWords:HeaderWords+size]...),
		crc:       crc,
		sealed:    true,
	}
	p.Dst = dstFromDownRoute(p.DownRoute)
	return p, nil
}

// crcTable is the shared IEEE polynomial table (crc32.MakeTable returns
// the package-internal table for the IEEE polynomial, so this allocates
// nothing of its own).
var crcTable = crc32.MakeTable(crc32.IEEE)

// crcSlice4 holds the slicing-by-4 extension tables: crcSlice4[0] is
// crcTable itself, and crcSlice4[k][b] is the CRC contribution of byte
// b positioned k bytes before the end of a 4-byte group.  Built once at
// init from crcTable, so the folded form below is bit-identical to the
// byte-at-a-time loop it replaces.
var crcSlice4 = func() [4][256]uint32 {
	var t [4][256]uint32
	t[0] = *crcTable
	for b := 0; b < 256; b++ {
		crc := t[0][b]
		for k := 1; k < 4; k++ {
			crc = t[0][byte(crc)] ^ (crc >> 8)
			t[k][b] = crc
		}
	}
	return t
}()

// crcUpdateWord folds one little-endian wire word into a running CRC.
// This is the standard byte-at-a-time reflected CRC-32 — bit-identical
// to crc32.Update over the word's four bytes — open-coded because
// passing even a stack buffer through hash/crc32 makes it escape, and
// Seal/checkCRC run on every packet at every router stage.
func crcUpdateWord(crc, w uint32) uint32 {
	crc = ^crc
	crc = crcTable[byte(crc)^byte(w)] ^ (crc >> 8)
	crc = crcTable[byte(crc)^byte(w>>8)] ^ (crc >> 8)
	crc = crcTable[byte(crc)^byte(w>>16)] ^ (crc >> 8)
	crc = crcTable[byte(crc)^byte(w>>24)] ^ (crc >> 8)
	return ^crc
}

// crcOfWords computes the IEEE CRC-32 of a word sequence.  The real
// Arctic link layer uses a hardware CRC; any strong checksum preserves
// the software-visible behaviour (a 1-bit good/bad status).
func crcOfWords(words []uint32) uint32 {
	var crc uint32
	for _, w := range words {
		crc = crcUpdateWord(crc, w)
	}
	return crc
}

// wireCRC computes the checksum over the words the CRC trailer covers —
// headers and payload — incrementally, without materializing the wire
// image.  Seal runs at every injection and checkCRC at every router
// stage, so this is the fabric's hottest per-packet path: the running
// CRC stays in its internal (inverted) form across the whole packet,
// and each little-endian wire word folds in via one slicing-by-4 step
// instead of four dependent table lookups.
func (p *Packet) wireCRC() uint32 {
	crc := ^uint32(0)
	crc = crcFoldWord(crc, p.header0())
	crc = crcFoldWord(crc, p.header1())
	for _, w := range p.Payload {
		crc = crcFoldWord(crc, w)
	}
	return ^crc
}

// crcFoldWord advances an internal-form (pre-inverted) CRC by one
// little-endian wire word using the slicing-by-4 tables.
func crcFoldWord(crc, w uint32) uint32 {
	crc ^= w
	return crcSlice4[3][byte(crc)] ^
		crcSlice4[2][byte(crc>>8)] ^
		crcSlice4[1][byte(crc>>16)] ^
		crcSlice4[0][byte(crc>>24)]
}

// Seal computes and stores the CRC over the packet's current wire
// words.  The fabric seals every packet at injection time; Encode seals
// as a side effect of serialization.
func (p *Packet) Seal() {
	p.crc = p.wireCRC()
	p.sealed = true
}

// checkCRC re-verifies the CRC, as every router stage and endpoint does
// in hardware.  The corrupted flag is the fast path for fault-injected
// damage; a sealed packet additionally recomputes the checksum over the
// wire words, so contents mutated after sealing are caught too.
func (p *Packet) checkCRC() bool {
	if p.corrupted {
		return false
	}
	if !p.sealed {
		return true
	}
	return p.wireCRC() == p.crc
}

// Corrupt flips the packet into the damaged state used by fault
// injection tests: its CRC no longer matches its contents.
func (p *Packet) Corrupt() { p.corrupted = true }

// Corrupted reports whether the packet was damaged in flight.
func (p *Packet) Corrupted() bool { return p.corrupted }

// dstFromDownRoute recovers the endpoint number from the full downroute
// field.  Digits are stored 2 bits per stage with the leaf stage in the
// low bits, which makes the field numerically equal to the endpoint
// number for radix-4 trees.
func dstFromDownRoute(dr uint16) int { return int(dr) }

// downRouteFor builds the downroute field for an endpoint number.
func downRouteFor(dst int) uint16 { return uint16(dst) }

// digit extracts the 2-bit digit of v at the given stage.
func digit(v, stage int) int { return v >> (2 * stage) & (Radix - 1) }
