// Package logp measures the LogP characteristics of the StarT-X PIO
// message-passing mechanism (paper Fig. 2 and [Culler et al. 96]):
// send overhead Os, receive overhead Or, half round-trip time, and the
// derived network latency L.
//
// The harness runs directly on the simulated NIUs of a two-node
// cluster, mirroring the paper's stand-alone micro-benchmark: the
// overheads are the processor stall times of the mmap register
// accesses; the round trip is a ping-pong of messages of the probed
// payload size.
package logp

import (
	"fmt"

	"hyades/internal/arctic"
	"hyades/internal/cluster"
	"hyades/internal/units"
)

// Result is one LogP characterisation row.
type Result struct {
	PayloadBytes int
	Os, Or       units.Time // send / receive processor overheads
	HalfRTT      units.Time // Tround-trip / 2
	L            units.Time // HalfRTT - Os - Or (network latency)
}

// Measure characterises PIO messaging for one payload size on a fresh
// two-node simulated cluster.
func Measure(payloadWords int, rounds int) (Result, error) {
	if payloadWords < arctic.MinPayloadWords || payloadWords > arctic.MaxPayloadWords {
		return Result{}, fmt.Errorf("logp: payload %d words out of range", payloadWords)
	}
	cl, err := cluster.New(cluster.DefaultConfig(2, 1))
	if err != nil {
		return Result{}, err
	}
	defer cl.Close()
	res := Result{PayloadBytes: payloadWords * 4}

	payload := make([]uint32, payloadWords)
	for i := range payload {
		payload[i] = uint32(i)
	}

	var rttTotal units.Time
	cl.Start(func(w *cluster.Worker) {
		niu := w.Node.NIU
		if w.Rank == 0 {
			// Os: the processor stall of one send.
			t0 := w.Proc.Now()
			niu.PIOSend(w.Proc, 1, 1, payload, arctic.Low)
			res.Os = w.Proc.Now() - t0
			niu.PIORecv(w.Proc, arctic.Low) // drain the echo
			// Ping-pong for the round trip.
			start := w.Proc.Now()
			for i := 0; i < rounds; i++ {
				niu.PIOSend(w.Proc, 1, 1, payload, arctic.Low)
				niu.PIORecv(w.Proc, arctic.Low)
			}
			rttTotal = w.Proc.Now() - start
		} else {
			// Or: receive a message that has long been waiting, so the
			// measured stall is pure register-read overhead.
			m := niu.PIORecv(w.Proc, arctic.Low)
			niu.PIOSend(w.Proc, 0, 1, m.Words, arctic.Low)
			for i := 0; i < rounds; i++ {
				got := niu.PIORecv(w.Proc, arctic.Low)
				niu.PIOSend(w.Proc, 0, 1, got.Words, arctic.Low)
			}
		}
	})
	if err := cl.Run(); err != nil {
		return Result{}, err
	}
	// Or is the defined processor overhead of draining a waiting
	// message: the register-read cost (the blocking wait is network
	// time, not overhead).  Read it from the NIU cost model, exactly as
	// the paper's estimate sums the mmap access costs.
	res.Or = cl.Nodes[1].NIU.PIORecvCost(payloadWords)
	res.HalfRTT = rttTotal / units.Time(2*rounds)
	res.L = res.HalfRTT - res.Os - res.Or
	return res, nil
}

// Fig2 reproduces the paper's LogP table: 8-byte and 64-byte payloads.
func Fig2() ([]Result, error) {
	var out []Result
	for _, words := range []int{2, 16} {
		r, err := Measure(words, 16)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
