package logp

import (
	"testing"
)

// TestFig2 reproduces the paper's LogP table within tight bands: the
// overheads are sums of published mmap costs, the round trip adds the
// simulated fabric.
//
//	paper:  8B: Os=0.4  Or=2.0  RTT/2=3.7   L=1.3
//	       64B: Os=1.7  Or=8.6  RTT/2=11.7  L=1.4
func TestFig2(t *testing.T) {
	rows, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	type band struct{ os, or, half, l [2]float64 }
	want := map[int]band{
		8:  {os: [2]float64{0.3, 0.5}, or: [2]float64{1.7, 2.1}, half: [2]float64{3.2, 4.2}, l: [2]float64{0.9, 1.8}},
		64: {os: [2]float64{1.4, 1.9}, or: [2]float64{8.0, 9.0}, half: [2]float64{10.8, 12.6}, l: [2]float64{0.9, 2.2}},
	}
	for _, r := range rows {
		w, ok := want[r.PayloadBytes]
		if !ok {
			t.Fatalf("unexpected payload %d", r.PayloadBytes)
		}
		t.Logf("%2dB: Os=%v Or=%v RTT/2=%v L=%v", r.PayloadBytes, r.Os, r.Or, r.HalfRTT, r.L)
		checks := []struct {
			name string
			got  float64
			band [2]float64
		}{
			{"Os", r.Os.Micros(), w.os},
			{"Or", r.Or.Micros(), w.or},
			{"RTT/2", r.HalfRTT.Micros(), w.half},
			{"L", r.L.Micros(), w.l},
		}
		for _, c := range checks {
			if c.got < c.band[0] || c.got > c.band[1] {
				t.Errorf("%dB payload: %s = %.2f us outside [%.1f, %.1f]", r.PayloadBytes, c.name, c.got, c.band[0], c.band[1])
			}
		}
	}
}

// TestOsMatchesEstimate verifies §2.3's cost estimate: Os for an
// 8-byte message is two back-to-back 8-byte writes (0.36 us), Or two
// reads (1.86 us).
func TestOsMatchesEstimate(t *testing.T) {
	r, err := Measure(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if us := r.Os.Micros(); us < 0.35 || us > 0.37 {
		t.Errorf("Os = %.3f us, estimate 0.36", us)
	}
	if us := r.Or.Micros(); us < 1.85 || us > 1.87 {
		t.Errorf("Or = %.3f us, estimate 1.86", us)
	}
}

// TestPayloadValidation rejects out-of-range payloads.
func TestPayloadValidation(t *testing.T) {
	if _, err := Measure(1, 4); err == nil {
		t.Error("1-word payload accepted")
	}
	if _, err := Measure(23, 4); err == nil {
		t.Error("23-word payload accepted")
	}
}
