// Whole-node crash plans.
//
// A NodeOutage takes an entire simulated node down — every rank proc on
// it dies at the crash instant and the NIU goes deaf — and, when the
// window is finite, schedules its restart.  Node plans follow the same
// discipline as link faults: windows live in virtual time, restart
// jitter comes from a per-node splitmix64 stream derived from the plan
// seed and the node's name, and a compiled plan is a pure function of
// the Config.  Two runs with equal configs crash at equal instants.

package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hyades/internal/units"
)

// NodeOutage crashes a node for a virtual-time window.  Node selects
// the victim: a decimal node index, a trailing-* prefix pattern over
// the decimal index ("1*" kills nodes 1 and 10..19), or "*" for every
// node.  Until <= 0 means the node never restarts.
type NodeOutage struct {
	Node  string
	From  units.Time // crash instant
	Until units.Time // restart instant; <= 0 = permanent death
}

// NodeWindow is one compiled crash window of a node: crash at From,
// restart at Until (with any configured jitter already folded in), or
// never if Until <= 0.
type NodeWindow struct {
	From  units.Time
	Until units.Time
}

// NodeFault is the compiled crash plan of one node.
type NodeFault struct {
	node    int
	windows []NodeWindow
}

// Windows returns the node's crash windows, sorted by crash instant.
func (nf *NodeFault) Windows() []NodeWindow { return nf.windows }

// Validate rejects plans the cluster cannot execute: overlapping crash
// windows on one node (the node would crash while already down) and a
// permanent death followed by a later window (the node is gone; a
// later crash of it is a contradiction, not a no-op).
func (nf *NodeFault) Validate() error {
	for i, w := range nf.windows {
		if i == 0 {
			continue
		}
		prev := nf.windows[i-1]
		if prev.Until <= 0 {
			return fmt.Errorf("fault: node %d has a crash window at %v after its permanent death at %v", nf.node, w.From, prev.From)
		}
		if w.From < prev.Until {
			return fmt.Errorf("fault: node %d crash windows overlap: [%v, %v) and one starting %v", nf.node, prev.From, prev.Until, w.From)
		}
	}
	return nil
}

// Node returns the compiled crash plan for node id, creating it on
// first use.  Like Link, callers resolve plans once at construction
// time; the linear cache scan never runs hot.
func (p *Plan) Node(id int) *NodeFault {
	for _, nf := range p.nodes {
		if nf.node == id {
			return nf
		}
	}
	nf := &NodeFault{node: id}
	name := nodeName(id)
	for _, o := range p.cfg.NodeOutages {
		if matchNode(o.Node, id) {
			nf.windows = append(nf.windows, NodeWindow{From: o.From, Until: o.Until})
		}
	}
	sort.Slice(nf.windows, func(i, j int) bool {
		return nf.windows[i].From < nf.windows[j].From
	})
	// Restart jitter: one draw per window, in window order, from the
	// node's own stream — the same per-entity discipline as links, so
	// adding a node outage elsewhere never perturbs this node's plan.
	if j := p.cfg.RestartJitter; j > 0 {
		rng := NewPRNG(streamSeed(p.cfg.Seed, name))
		for i := range nf.windows {
			draw := units.Time(rng.Float64() * float64(j))
			if nf.windows[i].Until > 0 {
				nf.windows[i].Until += draw
			}
		}
	}
	p.nodes = append(p.nodes, nf)
	return nf
}

// nodeName is the per-entity stream name for a node's jitter draws.
func nodeName(id int) string { return "node(" + strconv.Itoa(id) + ")" }

// matchNode reports whether pattern selects node id.  A pattern is "*"
// for every node, a trailing-* prefix over the decimal index, or an
// exact decimal index.
func matchNode(pattern string, id int) bool {
	name := strconv.Itoa(id)
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(name, pattern[:len(pattern)-1])
	}
	return pattern == name
}

// ParseNodeOutage parses the -node-outage flag grammar, the node-level
// sibling of ParseOutage:
//
//	NODE                crash at t=0, never restart
//	NODE:FROM           crash at FROM microseconds, never restart
//	NODE:FROM-UNTIL     crash at FROM, restart at UNTIL microseconds
//
// NODE is a decimal node index, a trailing-* prefix pattern, or "*".
func ParseNodeOutage(s string) (NodeOutage, error) {
	node, window, hasWindow := strings.Cut(s, ":")
	if node == "" {
		return NodeOutage{}, fmt.Errorf("fault: empty node selector in node outage %q", s)
	}
	if err := checkNodePattern(node, s); err != nil {
		return NodeOutage{}, err
	}
	o := NodeOutage{Node: node}
	if !hasWindow {
		return o, nil
	}
	from, until, hasUntil := strings.Cut(window, "-")
	fromUS, err := strconv.ParseFloat(from, 64)
	if err != nil {
		return NodeOutage{}, fmt.Errorf("fault: bad node-outage crash instant in %q: %v", s, err)
	}
	if fromUS < 0 {
		return NodeOutage{}, fmt.Errorf("fault: negative node-outage crash instant in %q", s)
	}
	o.From = units.Micros(fromUS)
	if hasUntil {
		untilUS, err := strconv.ParseFloat(until, 64)
		if err != nil {
			return NodeOutage{}, fmt.Errorf("fault: bad node-outage restart instant in %q: %v", s, err)
		}
		if untilUS <= fromUS {
			return NodeOutage{}, fmt.Errorf("fault: node outage %q restarts at or before its crash (reversed or empty window)", s)
		}
		o.Until = units.Micros(untilUS)
	}
	return o, nil
}

// checkNodePattern validates a node selector: "*", digits, or digits
// followed by a single trailing '*'.
func checkNodePattern(pattern, spec string) error {
	body := pattern
	if strings.HasSuffix(body, "*") {
		body = body[:len(body)-1]
	}
	for i := 0; i < len(body); i++ {
		if body[i] < '0' || body[i] > '9' {
			return fmt.Errorf("fault: bad node selector %q in node outage %q (want an index, a trailing-* prefix, or *)", pattern, spec)
		}
	}
	if strings.Count(pattern, "*") > 1 {
		return fmt.Errorf("fault: bad node selector %q in node outage %q (want an index, a trailing-* prefix, or *)", pattern, spec)
	}
	return nil
}

// ParseNodeOutages parses a comma-separated list of node-outage specs.
// An exact duplicate (same selector, same window) is rejected as a typo,
// matching ParseOutages.
func ParseNodeOutages(s string) ([]NodeOutage, error) {
	if s == "" {
		return nil, nil
	}
	var out []NodeOutage
	seen := map[NodeOutage]bool{}
	for _, part := range splitTopLevel(s) {
		o, err := ParseNodeOutage(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if seen[o] {
			return nil, fmt.Errorf("fault: duplicate node-outage spec %q", strings.TrimSpace(part))
		}
		seen[o] = true
		out = append(out, o)
	}
	return out, nil
}
