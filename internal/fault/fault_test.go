package fault

import (
	"strings"
	"testing"

	"hyades/internal/units"
)

func TestPRNGDeterminism(t *testing.T) {
	a, b := NewPRNG(42), NewPRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("equal seeds diverged at draw %d", i)
		}
	}
	c := NewPRNG(43)
	same := 0
	a = NewPRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 42 and 43 collided on %d of 1000 draws", same)
	}
}

func TestPRNGFloat64Range(t *testing.T) {
	r := NewPRNG(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of %d draws = %v, want ~0.5", n, mean)
	}
}

func TestPerLinkStreamsIndependent(t *testing.T) {
	// The same link name under the same plan seed must replay the same
	// stream; different links must not share one.
	p1 := NewPlan(Config{Seed: 9, DropRate: 0.5})
	p2 := NewPlan(Config{Seed: 9, DropRate: 0.5})
	l1a, l1b := p1.Link("L0.up0"), p2.Link("L0.up0")
	for i := 0; i < 100; i++ {
		if l1a.Transmit(0) != l1b.Transmit(0) {
			t.Fatalf("same link, same seed: verdicts diverged at %d", i)
		}
	}
	other := p1.Link("L0.up1")
	diverged := false
	ref := NewPlan(Config{Seed: 9, DropRate: 0.5}).Link("L0.up0")
	for i := 0; i < 100; i++ {
		if other.Transmit(0) != ref.Transmit(0) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatalf("distinct links replayed an identical verdict stream")
	}
}

func TestLinkCaching(t *testing.T) {
	p := NewPlan(Config{Seed: 1})
	if p.Link("a") != p.Link("a") {
		t.Fatalf("Link not cached per name")
	}
}

func TestTransmitConsumesFixedDraws(t *testing.T) {
	// A link with zero rates must consume draws at the same pace as one
	// with nonzero rates, so enabling corruption does not shift the
	// drop pattern.
	pa := NewPlan(Config{Seed: 5, DropRate: 0.3})
	pb := NewPlan(Config{Seed: 5, DropRate: 0.3, CorruptRate: 0.0001})
	la, lb := pa.Link("x"), pb.Link("x")
	drops := func(l *Link) (n int) {
		for i := 0; i < 2000; i++ {
			if l.Transmit(0) == Drop {
				n++
			}
		}
		return n
	}
	if da, db := drops(la), drops(lb); da != db && abs(da-db) > 2 {
		// The rare Corrupt verdict can only replace a Deliver, never a
		// Drop, so drop counts must match exactly.
		t.Fatalf("enabling corruption changed the drop pattern: %d vs %d", da, db)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestDropRateStatistics(t *testing.T) {
	l := NewPlan(Config{Seed: 77, DropRate: 0.01}).Link("y")
	drops := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if l.Transmit(0) == Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.008 || got > 0.012 {
		t.Fatalf("drop rate = %v, want ~0.01", got)
	}
}

func TestOutageWindows(t *testing.T) {
	p := NewPlan(Config{Outages: []Outage{
		{Link: "L1.*", From: 10 * units.Microsecond, Until: 20 * units.Microsecond},
		{Link: "dead", From: 0},
	}})
	l := p.Link("L1.up3")
	if l.Down(5 * units.Microsecond) {
		t.Fatalf("down before window")
	}
	if !l.Down(10 * units.Microsecond) {
		t.Fatalf("not down at window start")
	}
	if !l.Down(19 * units.Microsecond) {
		t.Fatalf("not down inside window")
	}
	if l.Down(20 * units.Microsecond) {
		t.Fatalf("down at window end (exclusive)")
	}
	if p.Link("L0.up0").Down(15 * units.Microsecond) {
		t.Fatalf("pattern L1.* matched an L0 link")
	}
	d := p.Link("dead")
	if !d.Down(0) || !d.Down(units.Hour) {
		t.Fatalf("Until<=0 outage is not permanent")
	}
	if v := d.Transmit(units.Microsecond); v != Drop {
		t.Fatalf("Transmit on a downed link = %v, want Drop", v)
	}
}

func TestDegradationScaling(t *testing.T) {
	p := NewPlan(Config{Degradations: []Degradation{
		{Link: "z", From: 0, Until: 10 * units.Microsecond, BandwidthScale: 0.5},
		{Link: "z", From: 5 * units.Microsecond, Until: 15 * units.Microsecond, LatencyScale: 3},
	}})
	l := p.Link("z")
	if bw, lat := l.Scale(2 * units.Microsecond); bw != 0.5 || lat != 1 {
		t.Fatalf("Scale(2us) = %v,%v", bw, lat)
	}
	if bw, lat := l.Scale(7 * units.Microsecond); bw != 0.5 || lat != 3 {
		t.Fatalf("overlapping windows: Scale(7us) = %v,%v", bw, lat)
	}
	if bw, lat := l.Scale(20 * units.Microsecond); bw != 1 || lat != 1 {
		t.Fatalf("Scale(20us) = %v,%v, want 1,1", bw, lat)
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatalf("zero config reports enabled")
	}
	if (Config{Seed: 123}).Enabled() {
		t.Fatalf("seed alone reports enabled")
	}
	for _, c := range []Config{
		{DropRate: 1e-3},
		{CorruptRate: 1e-3},
		{Outages: []Outage{{Link: "x"}}},
		{Degradations: []Degradation{{Link: "x", LatencyScale: 2}}},
	} {
		if !c.Enabled() {
			t.Fatalf("config %+v reports disabled", c)
		}
	}
}

func TestParseOutage(t *testing.T) {
	cases := []struct {
		in   string
		want Outage
	}{
		{"L0.up1", Outage{Link: "L0.up1"}},
		{"L1.*:100", Outage{Link: "L1.*", From: 100 * units.Microsecond}},
		{"x:10-25.5", Outage{Link: "x", From: 10 * units.Microsecond, Until: units.Micros(25.5)}},
	}
	for _, c := range cases {
		got, err := ParseOutage(c.in)
		if err != nil {
			t.Fatalf("ParseOutage(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseOutage(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", ":10", "x:ten", "x:10-5", "x:10-"} {
		if _, err := ParseOutage(bad); err == nil {
			t.Fatalf("ParseOutage(%q) accepted", bad)
		}
	}
	list, err := ParseOutages("a, b:1-2")
	if err != nil || len(list) != 2 || list[0].Link != "a" || list[1].Link != "b" {
		t.Fatalf("ParseOutages = %+v, %v", list, err)
	}
}

// TestParseOutagesErrors pins the flag grammar's rejections: every
// malformed spec in a list must fail the whole parse with a message
// naming the offending spec, never half-apply.
func TestParseOutagesErrors(t *testing.T) {
	cases := []struct {
		in      string
		errWant string // substring the error must carry
	}{
		// Malformed windows.
		{"a:ten", "bad outage window start"},
		{"a:1-two", "bad outage window end"},
		{"a:1-2-3", "bad outage window end"}, // extra dash lands in the end field
		{"a:-5", "bad outage window start"},  // empty start before the dash
		{"a:10-", "bad outage window end"},   // dangling dash
		{":10", "empty link name"},
		// Reversed and empty ranges.
		{"a:10-5", "empty outage window"},
		{"a:5-5", "empty outage window"},
		// Duplicates, whole-run and windowed, in any list position.
		{"a,a", `duplicate outage spec "a"`},
		{"a:1-2, b, a:1-2", `duplicate outage spec "a:1-2"`},
		{"up(s0,1,p0),up(s0,1,p0)", `duplicate outage spec "up(s0,1,p0)"`},
		// A malformed spec anywhere fails the list, even after good ones.
		{"a:1-2, b:oops", "bad outage window start"},
	}
	for _, c := range cases {
		list, err := ParseOutages(c.in)
		if err == nil {
			t.Errorf("ParseOutages(%q) accepted: %+v", c.in, list)
			continue
		}
		if list != nil {
			t.Errorf("ParseOutages(%q) returned outages alongside the error: %+v", c.in, list)
		}
		if !strings.Contains(err.Error(), c.errWant) {
			t.Errorf("ParseOutages(%q) error = %q, want it to mention %q", c.in, err, c.errWant)
		}
	}

	// Same link with different windows is not a duplicate: that is how
	// a flapping link is written.
	list, err := ParseOutages("a:1-2, a:3-4, a")
	if err != nil || len(list) != 3 {
		t.Errorf("flapping-link specs rejected: %+v, %v", list, err)
	}
}

// Arctic link names contain commas — up(s0,1,p0) — so ParseOutages
// must split only at top-level commas.  A naive split turned
// 'up(s0,1,*' into three outages, one of them the match-everything
// pattern "*", which silently downed the whole fabric.
func TestParseOutagesParenthesizedNames(t *testing.T) {
	// The README example: a windowed injection-link outage plus a
	// permanent switch-stage outage — exactly two specs.
	list, err := ParseOutages("inject(0):1000-3000,up(s0,1,p0)")
	if err != nil {
		t.Fatal(err)
	}
	want := []Outage{
		{Link: "inject(0)", From: 1000 * units.Microsecond, Until: 3000 * units.Microsecond},
		{Link: "up(s0,1,p0)"},
	}
	if len(list) != len(want) {
		t.Fatalf("ParseOutages = %+v, want %+v", list, want)
	}
	for i := range want {
		if list[i] != want[i] {
			t.Errorf("outage %d = %+v, want %+v", i, list[i], want[i])
		}
	}

	// A prefix wildcard leaves the paren unclosed; it must still be a
	// single spec, and must match only that router's up ports.
	list, err = ParseOutages("up(s0,1,*")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0] != (Outage{Link: "up(s0,1,*"}) {
		t.Fatalf("wildcard spec fragmented: %+v", list)
	}
	if !matchLink(list[0].Link, "up(s0,1,p2)") {
		t.Error("wildcard does not match its own router's port")
	}
	if matchLink(list[0].Link, "inject(0)") || matchLink(list[0].Link, "up(s0,2,p0)") {
		t.Error("wildcard leaks onto unrelated links")
	}
}
