// Package fault is the deterministic fault-injection subsystem for the
// Arctic fabric model.
//
// A Plan is built once from a Config and consulted by the network layer
// at every link transmission.  All randomness comes from a splitmix64
// generator seeded from the config — never the global math/rand state,
// never the wall clock — so a fault-injected run is exactly as
// reproducible as a pristine one: same seed, same faults, same virtual
// timeline, bit for bit.  Each link draws from its own stream (derived
// from the plan seed and the link name), so adding a link to the
// topology or reordering link construction does not perturb the faults
// seen by the others.
//
// Four composable fault models are supported:
//
//   - per-link packet drop (the packet occupies the wire, then vanishes)
//   - per-link packet corruption (the CRC check at the next router
//     stage fires and the stage discards the packet)
//   - transient link degradation (bandwidth/latency scaling over a
//     virtual-time window)
//   - whole-link outage (nothing gets through during the window)
//
// The package is part of the simulation event path: the determinism
// analyzers (detsource, maprange, ...) apply to it in full.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"hyades/internal/units"
)

// PRNG is a splitmix64 generator: 64 bits of state, one add and three
// xor-shift-multiply mixes per draw.  It is tiny, splittable (any seed
// gives an independent-looking stream) and fully deterministic, which is
// exactly what a reproducible fault plan needs.  It is registered with
// the detsource analyzer as an approved determinism source.
type PRNG struct {
	state uint64
}

// NewPRNG returns a generator seeded with seed.
func NewPRNG(seed uint64) *PRNG { return &PRNG{state: seed} }

// Uint64 returns the next 64 draws bits of the stream.
func (r *PRNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a draw uniform in [0, 1): the top 53 bits of Uint64
// scaled by 2^-53, the usual IEEE-double construction.
func (r *PRNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Outage takes a link down for a virtual-time window.  Until <= 0 means
// "forever" (a permanently failed link).
type Outage struct {
	Link  string     // link name or trailing-* prefix pattern
	From  units.Time // window start (inclusive)
	Until units.Time // window end (exclusive); <= 0 = forever
}

// active reports whether the outage covers virtual time t.
func (o Outage) active(t units.Time) bool {
	if t < o.From {
		return false
	}
	return o.Until <= 0 || t < o.Until
}

// Degradation scales a link's bandwidth and latency over a virtual-time
// window, modelling a flaky cable or a congested retimer rather than a
// hard failure.  Scales of 1 (or 0, meaning "unset") leave the
// respective figure alone.
type Degradation struct {
	Link           string
	From           units.Time
	Until          units.Time // <= 0 = forever
	BandwidthScale float64    // multiplies the link rate (0 < s <= 1 slows it)
	LatencyScale   float64    // multiplies the hop latency (s >= 1 slows it)
}

func (d Degradation) active(t units.Time) bool {
	if t < d.From {
		return false
	}
	return d.Until <= 0 || t < d.Until
}

// Config selects the faults to inject.  The zero value injects nothing.
type Config struct {
	Seed         uint64  // stream seed; runs with equal seeds see equal faults
	DropRate     float64 // per-packet, per-link silent-drop probability
	CorruptRate  float64 // per-packet, per-link corruption probability
	Outages      []Outage
	Degradations []Degradation

	// NodeOutages crash whole nodes (see node.go); RestartJitter, when
	// positive, stretches each finite window's restart instant by a
	// per-node seeded draw uniform in [0, RestartJitter).
	NodeOutages   []NodeOutage
	RestartJitter units.Time
}

// Enabled reports whether the config injects any fault at all.  The
// cluster layer uses it to gate the reliability protocol: a fault-free
// run carries zero protocol overhead and its packet counts and timings
// are identical to a build without this package.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.CorruptRate > 0 || len(c.Outages) > 0 ||
		len(c.Degradations) > 0 || len(c.NodeOutages) > 0
}

// NodesEnabled reports whether the config crashes whole nodes; the
// cluster layer uses it to gate heartbeat-based dead-peer detection and
// the crash-recovery controller.
func (c Config) NodesEnabled() bool { return len(c.NodeOutages) > 0 }

// Plan is a compiled Config: per-link PRNG streams plus the static
// outage/degradation windows.  Build one with NewPlan and share it
// across the fabric; it is not safe for concurrent use outside the DES
// baton discipline.
type Plan struct {
	cfg Config
	// links caches per-link state by name.  Insertion-ordered slice, not
	// a map: Plan is on the event path and bans map iteration.
	links []*Link
	// nodes caches compiled per-node crash plans the same way.
	nodes []*NodeFault
}

// NewPlan compiles cfg.
func NewPlan(cfg Config) *Plan { return &Plan{cfg: cfg} }

// Config returns the plan's originating configuration.
func (p *Plan) Config() Config { return p.cfg }

// Link returns the fault state for the named link, creating it on first
// use.  The fabric calls this once per link at construction time, so
// the linear scan never runs hot.
func (p *Plan) Link(name string) *Link {
	for _, l := range p.links {
		if l.name == name {
			return l
		}
	}
	l := &Link{
		name: name,
		rng:  NewPRNG(streamSeed(p.cfg.Seed, name)),
		plan: p,
	}
	for _, o := range p.cfg.Outages {
		if matchLink(o.Link, name) {
			l.outages = append(l.outages, o)
		}
	}
	for _, d := range p.cfg.Degradations {
		if matchLink(d.Link, name) {
			l.degradations = append(l.degradations, d)
		}
	}
	p.links = append(p.links, l)
	return l
}

// streamSeed derives an independent per-link seed from the plan seed
// and the link name: FNV-1a over the name, mixed with the seed through
// one splitmix step so that nearby seeds do not yield nearby streams.
func streamSeed(seed uint64, name string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	return NewPRNG(seed ^ h).Uint64()
}

// matchLink reports whether pattern selects the link name.  A pattern
// is an exact name, or a prefix ending in '*' ("L1.*" selects every
// first-level link), or "*" for all links.
func matchLink(pattern, name string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(name, pattern[:len(pattern)-1])
	}
	return pattern == name
}

// Verdict is the fate the plan assigns to one packet transmission.
type Verdict int

const (
	// Deliver: the packet crosses the link unharmed.
	Deliver Verdict = iota
	// Drop: the packet occupies the wire but never arrives.
	Drop
	// Corrupt: the packet arrives with a bad CRC and is discarded at
	// the next router stage.
	Corrupt
)

// Link is the per-link fault state.
type Link struct {
	name         string
	rng          *PRNG
	plan         *Plan
	outages      []Outage
	degradations []Degradation
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Down reports whether the link is in an outage window at time t.
func (l *Link) Down(t units.Time) bool {
	for _, o := range l.outages {
		if o.active(t) {
			return true
		}
	}
	return false
}

// Transmit draws the fate of one packet crossing the link at time t.
// It always consumes exactly two draws from the link's stream (drop,
// then corrupt), so the verdict sequence of one link is independent of
// the rates chosen for any other — changing a rate changes which side
// of the threshold each draw lands on, never the draws themselves.
func (l *Link) Transmit(t units.Time) Verdict {
	dropDraw := l.rng.Float64()
	corruptDraw := l.rng.Float64()
	if l.Down(t) {
		return Drop
	}
	if cfg := l.plan.cfg; cfg.DropRate > 0 && dropDraw < cfg.DropRate {
		return Drop
	} else if cfg.CorruptRate > 0 && corruptDraw < cfg.CorruptRate {
		return Corrupt
	}
	return Deliver
}

// Scale returns the bandwidth and latency multipliers in effect at t
// (1, 1 when the link is healthy).  Overlapping degradation windows
// compose multiplicatively.
func (l *Link) Scale(t units.Time) (bandwidth, latency float64) {
	bandwidth, latency = 1, 1
	for _, d := range l.degradations {
		if !d.active(t) {
			continue
		}
		if d.BandwidthScale > 0 {
			bandwidth *= d.BandwidthScale
		}
		if d.LatencyScale > 0 {
			latency *= d.LatencyScale
		}
	}
	return bandwidth, latency
}

// ParseOutage parses the -link-outage flag grammar:
//
//	LINK            whole-run outage on LINK
//	LINK:FROM       outage from FROM microseconds onward
//	LINK:FROM-UNTIL outage over [FROM, UNTIL) microseconds
//
// LINK may use the trailing-* prefix wildcard.
func ParseOutage(s string) (Outage, error) {
	link, window, hasWindow := strings.Cut(s, ":")
	if link == "" {
		return Outage{}, fmt.Errorf("fault: empty link name in outage %q", s)
	}
	o := Outage{Link: link}
	if !hasWindow {
		return o, nil
	}
	from, until, hasUntil := strings.Cut(window, "-")
	fromUS, err := strconv.ParseFloat(from, 64)
	if err != nil {
		return Outage{}, fmt.Errorf("fault: bad outage window start in %q: %v", s, err)
	}
	o.From = units.Micros(fromUS)
	if hasUntil {
		untilUS, err := strconv.ParseFloat(until, 64)
		if err != nil {
			return Outage{}, fmt.Errorf("fault: bad outage window end in %q: %v", s, err)
		}
		if untilUS <= fromUS {
			return Outage{}, fmt.Errorf("fault: empty outage window in %q", s)
		}
		o.Until = units.Micros(untilUS)
	}
	return o, nil
}

// ParseOutages parses a comma-separated list of outage specs.  Link
// names themselves contain commas — up(s0,1,p0) — so only commas
// outside parentheses separate specs.  An exact duplicate (same link
// pattern, same window) is rejected: it is a typo, not a request to
// take the link down twice, and letting it through would silently
// change nothing.
func ParseOutages(s string) ([]Outage, error) {
	if s == "" {
		return nil, nil
	}
	var out []Outage
	seen := map[Outage]bool{}
	for _, part := range splitTopLevel(s) {
		o, err := ParseOutage(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if seen[o] {
			return nil, fmt.Errorf("fault: duplicate outage spec %q", strings.TrimSpace(part))
		}
		seen[o] = true
		out = append(out, o)
	}
	return out, nil
}

// splitTopLevel splits s at commas that are not enclosed in
// parentheses.  An unbalanced close resets the depth rather than going
// negative, so a malformed name still splits somewhere and the
// resulting fragment fails in ParseOutage with a useful message.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}
