package hyades

// Chaos determinism: fault injection must not weaken the determinism
// contract, and the reliable channel must hide faults from the model.
// Two coupled runs with the same fault seed must agree bit for bit —
// same model state, same event count, same final virtual clock — and
// their model state must also match a fault-free run exactly: the
// go-back-N layer masks drops by retransmission, so the physics never
// sees them.  Only the *state* digest is compared against the
// fault-free run (faults legitimately change timing and event counts;
// they must never change an answer).

import (
	"crypto/sha256"
	"errors"
	"strings"
	"testing"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/fault"
	"hyades/internal/gcm"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
	"hyades/internal/units"
)

// chaosFingerprint runs the small coupled configuration under the
// given fault plan and returns a SHA-256 over every worker's
// checkpointed state (state only — no clocks, no event counts), plus
// the run's observables for same-seed comparison.
func chaosFingerprint(t *testing.T, steps int, fc fault.Config, workers int) (digest [32]byte, events uint64, now units.Time, fs comm.FaultStats) {
	t.Helper()
	d := tile.Decomp{NXg: 16, NYg: 8, Px: 2, Py: 1, PeriodicX: true}
	cfg := gcm.DefaultCoupledConfig(d)
	cfg.Ocean.Grid.NX, cfg.Ocean.Grid.NY = 16, 8
	cfg.Ocean.Grid.NZ = 4
	cfg.Ocean.Grid.DZ = []float64{250, 500, 1000, 2250}
	cfg.Atmos.Grid.NX, cfg.Atmos.Grid.NY = 16, 8
	cfg.CoupleEvery = 5

	tiles := cfg.Ocean.Decomp.Tiles()
	nWorkers := 2 * tiles
	ccfg := cluster.DefaultConfig(nWorkers, 1)
	ccfg.Fault = fc
	ccfg.Workers = workers
	cl, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	coupled := make([]*gcm.Coupled, nWorkers)
	var buildErr error
	cl.Start(func(w *cluster.Worker) {
		c := cfg
		if w.Rank < tiles {
			ph := physics.New(physics.Default())
			c.Atmos.Forcing = ph
			c.Physics = ph
		}
		cp, err := gcm.NewCoupled(c, lib.Bind(w))
		if err != nil {
			buildErr = err
			return
		}
		coupled[w.Rank] = cp
		cp.Run(steps)
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}

	h := sha256.New()
	for r, cp := range coupled {
		if cp == nil {
			t.Fatalf("worker %d did not build", r)
		}
		if err := cp.M.Checkpoint(h); err != nil {
			t.Fatalf("worker %d: checkpoint: %v", r, err)
		}
	}
	copy(digest[:], h.Sum(nil))
	return digest, cl.Eng.Events(), cl.Eng.Now(), lib.FaultStats()
}

// TestChaosRunIsDeterministic is the acceptance test for the fault
// subsystem: same seed, same faults, same answer — and the same answer
// as no faults at all.
func TestChaosRunIsDeterministic(t *testing.T) {
	const steps = 12
	fc := fault.Config{Seed: 42, DropRate: 1e-3}

	d1, e1, t1, fs1 := chaosFingerprint(t, steps, fc, 0)
	d2, e2, t2, fs2 := chaosFingerprint(t, steps, fc, 0)
	if fs1.Retransmits == 0 {
		t.Fatalf("chaos run exercised no retransmissions (drops=%d); the test is vacuous", fs1.FaultDropped)
	}
	if e1 != e2 || t1 != t2 {
		t.Errorf("same-seed chaos runs diverge: events %d vs %d, clock %v vs %v", e1, e2, t1, t2)
	}
	if d1 != d2 {
		t.Errorf("same-seed chaos runs produce different model state: %x vs %x", d1, d2)
	}
	if fs1 != fs2 {
		t.Errorf("same-seed chaos runs disagree on fault counters:\n%+v\n%+v", fs1, fs2)
	}

	d0, _, t0, fs0 := chaosFingerprint(t, steps, fault.Config{}, 0)
	if d0 != d1 {
		t.Errorf("faults leaked into the physics: chaos state %x, fault-free state %x", d1, d0)
	}
	// The fault-free run pays zero recovery overhead: the reliable
	// channel is not even enabled.
	if fs0 != (comm.FaultStats{}) {
		t.Errorf("fault-free run shows nonzero fault counters: %+v", fs0)
	}
	if t1 <= t0 {
		t.Errorf("retransmissions cost no virtual time: chaos %v vs fault-free %v", t1, t0)
	}
}

// TestChaosDeterminismAcrossWorkerCounts crosses the two contracts:
// under an active fault plan, runs with no pool and with a two-worker
// pool must agree on every observable — state, event count, virtual
// clock and the full fault-counter set.  Recovery (timeouts,
// retransmissions, duplicate suppression) happens entirely in engine
// events, so the host worker count must not be able to perturb it.
func TestChaosDeterminismAcrossWorkerCounts(t *testing.T) {
	const steps = 12
	fc := fault.Config{Seed: 42, DropRate: 1e-3}
	d1, e1, t1, fs1 := chaosFingerprint(t, steps, fc, -1)
	d2, e2, t2, fs2 := chaosFingerprint(t, steps, fc, 2)
	if fs1.Retransmits == 0 {
		t.Fatalf("chaos run exercised no retransmissions; the test is vacuous")
	}
	if e1 != e2 || t1 != t2 {
		t.Errorf("worker pool perturbs fault recovery: events %d vs %d, clock %v vs %v", e1, e2, t1, t2)
	}
	if d1 != d2 {
		t.Errorf("worker pool changes faulted model state: %x vs %x", d1, d2)
	}
	if fs1 != fs2 {
		t.Errorf("worker pool changes fault counters:\n%+v\n%+v", fs1, fs2)
	}
}

// TestPeerUnreachableSurfaces pins the failure mode: a permanently
// severed link must surface as comm.ErrPeerUnreachable from
// Cluster.Run within bounded virtual time — never a hang.
func TestPeerUnreachableSurfaces(t *testing.T) {
	ccfg := cluster.DefaultConfig(2, 1)
	ccfg.Fault = fault.Config{
		Outages: []fault.Outage{{Link: "inject(0)", From: 0}},
	}
	cl, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(func(w *cluster.Worker) {
		ep := lib.Bind(w)
		ep.GlobalSum(float64(w.Rank))
	})
	err = cl.Run()
	if err == nil {
		t.Fatal("severed link produced no error")
	}
	if !errors.Is(err, comm.ErrPeerUnreachable) {
		t.Fatalf("error does not wrap ErrPeerUnreachable: %v", err)
	}
	var pe *comm.PeerUnreachableError
	if !errors.As(err, &pe) {
		t.Fatalf("error carries no *PeerUnreachableError: %v", err)
	}
	if pe.SrcNode != 0 || pe.DstNode != 1 {
		t.Errorf("diagnostics blame nodes %d -> %d, want 0 -> 1", pe.SrcNode, pe.DstNode)
	}
	if pe.Retries == 0 {
		t.Errorf("no retries recorded before giving up: %+v", pe)
	}
	// Bounded: the retry budget's backoff schedule sums to well under a
	// simulated minute.
	if cl.Eng.Now() > units.Minute {
		t.Errorf("failure declared only at %v of virtual time", cl.Eng.Now())
	}
}

// --- Whole-node crash/restart recovery ---

// recoveryScenario is the small gyre every node-crash test runs: 4
// tiles, 12 or 24 steps at ~25 ms of virtual time each, so the crash
// windows below land at known phases of the integration.
func recoveryScenario() gcm.Config {
	d := tile.Decomp{NXg: 32, NYg: 32, Px: 2, Py: 2}
	return gcm.GyreConfig(32, 32, 3, d)
}

// stateDigest hashes every rank's full prognostic state — the
// survival contract's observable.
func stateDigest(t *testing.T, res *gcm.Result) [32]byte {
	t.Helper()
	h := sha256.New()
	for r, m := range res.Models {
		if m == nil {
			t.Fatalf("rank %d has no model", r)
		}
		if err := m.Checkpoint(h); err != nil {
			t.Fatalf("rank %d: checkpoint: %v", r, err)
		}
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// TestNodeCrashRecoveryDeterministic is the acceptance test for the
// crash-recovery subsystem.  A run that loses node 1 for 1 ms (longer
// than the peer lease: survivors detect the death by lease expiry) and
// node 2 for 300 us (shorter than the lease: survivors learn from the
// rejoin announcement) must, at every host worker count, end with the
// same state digest, event count and final virtual clock — and the
// digest must equal the fault-free run's, bit for bit.
func TestNodeCrashRecoveryDeterministic(t *testing.T) {
	cfg := recoveryScenario()
	fc := fault.Config{Seed: 7, NodeOutages: []fault.NodeOutage{
		{Node: "1", From: 200 * units.Millisecond, Until: 201 * units.Millisecond},
		{Node: "2", From: 400 * units.Millisecond, Until: 400*units.Millisecond + 300*units.Microsecond},
	}}

	type obs struct {
		digest [32]byte
		events uint64
		final  units.Time
		rec    gcm.RecoveryResult
	}
	run := func(workers int) obs {
		res, err := gcm.RunParallelOpts(4, 1, cfg, 0, 24,
			gcm.ParallelOpts{Fault: fc, CheckpointEvery: 6, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return obs{stateDigest(t, res), res.Events, res.FinalTime, res.Recovery}
	}

	inline := run(-1)
	pooled := run(2)

	if inline.rec.Restarts != 2 {
		t.Fatalf("scenario staged 2 crashes, run survived %d", inline.rec.Restarts)
	}
	if inline.rec.Checkpoints == 0 || inline.rec.RecoveryTime <= 0 || inline.rec.LostVirtual <= 0 {
		t.Errorf("recovery accounting is vacuous: %+v", inline.rec)
	}
	if inline.events != pooled.events || inline.final != pooled.final {
		t.Errorf("worker pool perturbs crash recovery: events %d vs %d, clock %v vs %v",
			inline.events, pooled.events, inline.final, pooled.final)
	}
	if inline.digest != pooled.digest {
		t.Errorf("worker pool changes recovered model state: %x vs %x", inline.digest, pooled.digest)
	}
	if inline.rec != pooled.rec {
		t.Errorf("worker pool changes recovery counters:\n%+v\n%+v", inline.rec, pooled.rec)
	}

	res0, err := gcm.RunParallelOpts(4, 1, cfg, 0, 24, gcm.ParallelOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d0 := stateDigest(t, res0); d0 != inline.digest {
		t.Errorf("crash recovery leaked into the physics: recovered state %x, fault-free state %x",
			inline.digest, d0)
	}
	// Crashes cost virtual time (detection, backoff, replay), never
	// correctness.
	if inline.final <= res0.FinalTime {
		t.Errorf("two crashes cost no virtual time: %v vs fault-free %v", inline.final, res0.FinalTime)
	}
}

// TestNodeCrashMixModeRecovers runs the two-processor SMP
// configuration: a node crash kills both rank procs of the SMP, and
// recovery must restore the intra-node staging (shared-memory
// mailboxes, pull locks) as well as the fabric state.
func TestNodeCrashMixModeRecovers(t *testing.T) {
	cfg := recoveryScenario()
	fc := fault.Config{Seed: 7, NodeOutages: []fault.NodeOutage{
		{Node: "1", From: 200 * units.Millisecond, Until: 201 * units.Millisecond},
	}}
	res, err := gcm.RunParallelOpts(2, 2, cfg, 0, 12,
		gcm.ParallelOpts{Fault: fc, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.Restarts != 1 {
		t.Fatalf("staged 1 crash, survived %d", res.Recovery.Restarts)
	}
	res0, err := gcm.RunParallelOpts(2, 2, cfg, 0, 12, gcm.ParallelOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d, d0 := stateDigest(t, res), stateDigest(t, res0); d != d0 {
		t.Errorf("mix-mode recovery diverged from fault-free state: %x vs %x", d, d0)
	}
}

// TestCrashStormRecovers loses every node exactly once, staggered
// through the run — including node 0, whose rank holds the timing
// bookkeeping.  All four crashes must be survived with a fault-free
// digest.
func TestCrashStormRecovers(t *testing.T) {
	cfg := recoveryScenario()
	fc := fault.Config{Seed: 7, NodeOutages: []fault.NodeOutage{
		{Node: "0", From: 120 * units.Millisecond, Until: 121 * units.Millisecond},
		{Node: "1", From: 220 * units.Millisecond, Until: 221 * units.Millisecond},
		{Node: "2", From: 320 * units.Millisecond, Until: 321 * units.Millisecond},
		{Node: "3", From: 420 * units.Millisecond, Until: 421 * units.Millisecond},
	}}
	res, err := gcm.RunParallelOpts(4, 1, cfg, 0, 24,
		gcm.ParallelOpts{Fault: fc, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.Restarts != 4 {
		t.Fatalf("staged 4 crashes, survived %d", res.Recovery.Restarts)
	}
	res0, err := gcm.RunParallelOpts(4, 1, cfg, 0, 24, gcm.ParallelOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d, d0 := stateDigest(t, res), stateDigest(t, res0); d != d0 {
		t.Errorf("crash storm diverged from fault-free state: %x vs %x", d, d0)
	}
}

// TestCrashDuringCheckpointDiscardsPending lands the crash inside a
// checkpoint round — after some ranks have saved step 6 but before
// all four have.  The two-phase store must discard the spoiled
// pending set, restore from the previous commit, and still end
// bit-identical to the fault-free run.
func TestCrashDuringCheckpointDiscardsPending(t *testing.T) {
	cfg := recoveryScenario()
	fc := fault.Config{Seed: 7, NodeOutages: []fault.NodeOutage{
		{Node: "2", From: 150900 * units.Microsecond, Until: 151900 * units.Microsecond},
	}}
	res, err := gcm.RunParallelOpts(4, 1, cfg, 0, 12,
		gcm.ParallelOpts{Fault: fc, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.Restarts != 1 {
		t.Fatalf("staged 1 crash, survived %d", res.Recovery.Restarts)
	}
	if res.Recovery.PendingDiscarded == 0 {
		t.Fatalf("crash at 150.9ms no longer lands inside the step-6 checkpoint round (recalibrate the window): %+v", res.Recovery)
	}
	res0, err := gcm.RunParallelOpts(4, 1, cfg, 0, 12, gcm.ParallelOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d, d0 := stateDigest(t, res), stateDigest(t, res0); d != d0 {
		t.Errorf("discarded-checkpoint recovery diverged from fault-free state: %x vs %x", d, d0)
	}
}

// TestCrashWithoutCheckpointFailsLoudly pins the two unrecoverable
// failure modes: a crash with nothing to restore, and a permanent
// node loss.  Both must surface as bounded diagnostic errors from the
// driver — never a hang.
func TestCrashWithoutCheckpointFailsLoudly(t *testing.T) {
	cfg := recoveryScenario()

	// No checkpoint interval: the restart finds nothing to restore.
	fc := fault.Config{Seed: 7, NodeOutages: []fault.NodeOutage{
		{Node: "2", From: 150200 * units.Microsecond, Until: 151200 * units.Microsecond},
	}}
	_, err := gcm.RunParallelOpts(4, 1, cfg, 0, 12, gcm.ParallelOpts{Fault: fc})
	if err == nil {
		t.Fatal("crash with no checkpoint produced no error")
	}
	if !strings.Contains(err.Error(), "no surviving checkpoint") {
		t.Errorf("diagnostic does not name the missing checkpoint: %v", err)
	}

	// Permanent death: no restart is ever scheduled.
	fc = fault.Config{Seed: 7, NodeOutages: []fault.NodeOutage{
		{Node: "1", From: 100 * units.Millisecond},
	}}
	_, err = gcm.RunParallelOpts(4, 1, cfg, 0, 12, gcm.ParallelOpts{Fault: fc, CheckpointEvery: 3})
	if err == nil {
		t.Fatal("permanent node loss produced no error")
	}
	if !errors.Is(err, comm.ErrPeerUnreachable) {
		t.Errorf("permanent loss does not wrap ErrPeerUnreachable: %v", err)
	}
	if !strings.Contains(err.Error(), "recovery impossible") {
		t.Errorf("diagnostic does not say recovery is impossible: %v", err)
	}
}

// TestNodeOutageGrammar covers the -node-outage spec grammar and the
// cluster-level plan validation.
func TestNodeOutageGrammar(t *testing.T) {
	parse := []struct {
		spec string
		want string // "" = must parse
	}{
		{"3", ""},
		{"3:1000", ""},
		{"3:1000-2000", ""},
		{"*", ""},
		{"1*:500-900", ""},
		{"3:1000-2000,2:5000-6000", ""},
		{"3:1000,", "empty node selector"},
		{"3:", "bad node-outage crash instant"},
		{"3:abc", "bad node-outage crash instant"},
		{"3:1000-abc", "bad node-outage restart instant"},
		{"3:2000-1000", "reversed or empty window"},
		{"3:1000-1000", "reversed or empty window"},
		{"x*y", "bad node selector"},
		{"**", "bad node selector"},
		{"3:1000-2000,3:1000-2000", "duplicate node-outage spec"},
	}
	for _, tc := range parse {
		_, err := fault.ParseNodeOutages(tc.spec)
		switch {
		case tc.want == "" && err != nil:
			t.Errorf("%q: unexpected error %v", tc.spec, err)
		case tc.want != "" && err == nil:
			t.Errorf("%q: parsed, want error containing %q", tc.spec, tc.want)
		case tc.want != "" && !strings.Contains(err.Error(), tc.want):
			t.Errorf("%q: error %v, want %q", tc.spec, err, tc.want)
		}
	}

	// Plan validation happens at cluster construction, not mid-run.
	build := []struct {
		outages []fault.NodeOutage
		want    string
	}{
		{[]fault.NodeOutage{{Node: "7", From: 1}}, "machine has nodes 0..3"},
		{[]fault.NodeOutage{
			{Node: "1", From: 100 * units.Microsecond, Until: units.Millisecond},
			{Node: "1", From: 500 * units.Microsecond, Until: 2 * units.Millisecond},
		}, "crash windows overlap"},
		{[]fault.NodeOutage{
			{Node: "1", From: 100 * units.Microsecond},
			{Node: "1", From: 5 * units.Millisecond, Until: 6 * units.Millisecond},
		}, "after its permanent death"},
	}
	for _, tc := range build {
		ccfg := cluster.DefaultConfig(4, 1)
		ccfg.Fault = fault.Config{Seed: 1, NodeOutages: tc.outages}
		_, err := cluster.New(ccfg)
		if err == nil {
			t.Errorf("outages %+v: cluster built, want error containing %q", tc.outages, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("outages %+v: error %v, want %q", tc.outages, err, tc.want)
		}
	}
}
