package hyades

// Chaos determinism: fault injection must not weaken the determinism
// contract, and the reliable channel must hide faults from the model.
// Two coupled runs with the same fault seed must agree bit for bit —
// same model state, same event count, same final virtual clock — and
// their model state must also match a fault-free run exactly: the
// go-back-N layer masks drops by retransmission, so the physics never
// sees them.  Only the *state* digest is compared against the
// fault-free run (faults legitimately change timing and event counts;
// they must never change an answer).

import (
	"crypto/sha256"
	"errors"
	"testing"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/fault"
	"hyades/internal/gcm"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
	"hyades/internal/units"
)

// chaosFingerprint runs the small coupled configuration under the
// given fault plan and returns a SHA-256 over every worker's
// checkpointed state (state only — no clocks, no event counts), plus
// the run's observables for same-seed comparison.
func chaosFingerprint(t *testing.T, steps int, fc fault.Config, workers int) (digest [32]byte, events uint64, now units.Time, fs comm.FaultStats) {
	t.Helper()
	d := tile.Decomp{NXg: 16, NYg: 8, Px: 2, Py: 1, PeriodicX: true}
	cfg := gcm.DefaultCoupledConfig(d)
	cfg.Ocean.Grid.NX, cfg.Ocean.Grid.NY = 16, 8
	cfg.Ocean.Grid.NZ = 4
	cfg.Ocean.Grid.DZ = []float64{250, 500, 1000, 2250}
	cfg.Atmos.Grid.NX, cfg.Atmos.Grid.NY = 16, 8
	cfg.CoupleEvery = 5

	tiles := cfg.Ocean.Decomp.Tiles()
	nWorkers := 2 * tiles
	ccfg := cluster.DefaultConfig(nWorkers, 1)
	ccfg.Fault = fc
	ccfg.Workers = workers
	cl, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	coupled := make([]*gcm.Coupled, nWorkers)
	var buildErr error
	cl.Start(func(w *cluster.Worker) {
		c := cfg
		if w.Rank < tiles {
			ph := physics.New(physics.Default())
			c.Atmos.Forcing = ph
			c.Physics = ph
		}
		cp, err := gcm.NewCoupled(c, lib.Bind(w))
		if err != nil {
			buildErr = err
			return
		}
		coupled[w.Rank] = cp
		cp.Run(steps)
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}

	h := sha256.New()
	for r, cp := range coupled {
		if cp == nil {
			t.Fatalf("worker %d did not build", r)
		}
		if err := cp.M.Checkpoint(h); err != nil {
			t.Fatalf("worker %d: checkpoint: %v", r, err)
		}
	}
	copy(digest[:], h.Sum(nil))
	return digest, cl.Eng.Events(), cl.Eng.Now(), lib.FaultStats()
}

// TestChaosRunIsDeterministic is the acceptance test for the fault
// subsystem: same seed, same faults, same answer — and the same answer
// as no faults at all.
func TestChaosRunIsDeterministic(t *testing.T) {
	const steps = 12
	fc := fault.Config{Seed: 42, DropRate: 1e-3}

	d1, e1, t1, fs1 := chaosFingerprint(t, steps, fc, 0)
	d2, e2, t2, fs2 := chaosFingerprint(t, steps, fc, 0)
	if fs1.Retransmits == 0 {
		t.Fatalf("chaos run exercised no retransmissions (drops=%d); the test is vacuous", fs1.FaultDropped)
	}
	if e1 != e2 || t1 != t2 {
		t.Errorf("same-seed chaos runs diverge: events %d vs %d, clock %v vs %v", e1, e2, t1, t2)
	}
	if d1 != d2 {
		t.Errorf("same-seed chaos runs produce different model state: %x vs %x", d1, d2)
	}
	if fs1 != fs2 {
		t.Errorf("same-seed chaos runs disagree on fault counters:\n%+v\n%+v", fs1, fs2)
	}

	d0, _, t0, fs0 := chaosFingerprint(t, steps, fault.Config{}, 0)
	if d0 != d1 {
		t.Errorf("faults leaked into the physics: chaos state %x, fault-free state %x", d1, d0)
	}
	// The fault-free run pays zero recovery overhead: the reliable
	// channel is not even enabled.
	if fs0 != (comm.FaultStats{}) {
		t.Errorf("fault-free run shows nonzero fault counters: %+v", fs0)
	}
	if t1 <= t0 {
		t.Errorf("retransmissions cost no virtual time: chaos %v vs fault-free %v", t1, t0)
	}
}

// TestChaosDeterminismAcrossWorkerCounts crosses the two contracts:
// under an active fault plan, runs with no pool and with a two-worker
// pool must agree on every observable — state, event count, virtual
// clock and the full fault-counter set.  Recovery (timeouts,
// retransmissions, duplicate suppression) happens entirely in engine
// events, so the host worker count must not be able to perturb it.
func TestChaosDeterminismAcrossWorkerCounts(t *testing.T) {
	const steps = 12
	fc := fault.Config{Seed: 42, DropRate: 1e-3}
	d1, e1, t1, fs1 := chaosFingerprint(t, steps, fc, -1)
	d2, e2, t2, fs2 := chaosFingerprint(t, steps, fc, 2)
	if fs1.Retransmits == 0 {
		t.Fatalf("chaos run exercised no retransmissions; the test is vacuous")
	}
	if e1 != e2 || t1 != t2 {
		t.Errorf("worker pool perturbs fault recovery: events %d vs %d, clock %v vs %v", e1, e2, t1, t2)
	}
	if d1 != d2 {
		t.Errorf("worker pool changes faulted model state: %x vs %x", d1, d2)
	}
	if fs1 != fs2 {
		t.Errorf("worker pool changes fault counters:\n%+v\n%+v", fs1, fs2)
	}
}

// TestPeerUnreachableSurfaces pins the failure mode: a permanently
// severed link must surface as comm.ErrPeerUnreachable from
// Cluster.Run within bounded virtual time — never a hang.
func TestPeerUnreachableSurfaces(t *testing.T) {
	ccfg := cluster.DefaultConfig(2, 1)
	ccfg.Fault = fault.Config{
		Outages: []fault.Outage{{Link: "inject(0)", From: 0}},
	}
	cl, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(func(w *cluster.Worker) {
		ep := lib.Bind(w)
		ep.GlobalSum(float64(w.Rank))
	})
	err = cl.Run()
	if err == nil {
		t.Fatal("severed link produced no error")
	}
	if !errors.Is(err, comm.ErrPeerUnreachable) {
		t.Fatalf("error does not wrap ErrPeerUnreachable: %v", err)
	}
	var pe *comm.PeerUnreachableError
	if !errors.As(err, &pe) {
		t.Fatalf("error carries no *PeerUnreachableError: %v", err)
	}
	if pe.SrcNode != 0 || pe.DstNode != 1 {
		t.Errorf("diagnostics blame nodes %d -> %d, want 0 -> 1", pe.SrcNode, pe.DstNode)
	}
	if pe.Retries == 0 {
		t.Errorf("no retries recorded before giving up: %+v", pe)
	}
	// Bounded: the retry budget's backoff schedule sums to well under a
	// simulated minute.
	if cl.Eng.Now() > units.Minute {
		t.Errorf("failure declared only at %v of virtual time", cl.Eng.Now())
	}
}
