package hyades

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/gcm"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
	"hyades/internal/units"
)

// The coupled golden fixture pins the acceptance contract of the
// flat-row kernel rewrite: after N coupled steps the model STATE
// (every rank's checkpoint stream) and the virtual clock must be
// bit-identical to the seed kernels, for every worker-pool size.
// Unlike the determinism matrix — which compares runs against each
// other within one binary — this fixture compares against a digest
// recorded from the tree BEFORE the rewrite, so a numerics drift that
// is internally consistent still fails.
//
// The engine's event count is recorded for information but not
// asserted: it is host-side scheduling accounting, not model state,
// and the worker-count determinism tests already pin its invariance
// across pool sizes.  Regenerate (only for a deliberate numerics
// change) with:
//
//	go test -run TestGoldenCoupledState -update .
var updateCoupledGolden = flag.Bool("update", false, "rewrite testdata/golden_coupled.json from the current tree")

// coupledStateDigest runs the small coupled configuration of the
// determinism suite and returns the SHA-256 over all ranks' checkpoint
// streams (state only — no engine accounting), plus the engine's
// virtual clock and event count.
func coupledStateDigest(t *testing.T, steps, workers int) (digest string, now units.Time, events uint64) {
	t.Helper()
	d := tile.Decomp{NXg: 16, NYg: 8, Px: 2, Py: 1, PeriodicX: true}
	cfg := gcm.DefaultCoupledConfig(d)
	cfg.Ocean.Grid.NX, cfg.Ocean.Grid.NY = 16, 8
	cfg.Ocean.Grid.NZ = 4
	cfg.Ocean.Grid.DZ = []float64{250, 500, 1000, 2250}
	cfg.Atmos.Grid.NX, cfg.Atmos.Grid.NY = 16, 8
	cfg.CoupleEvery = 5

	tiles := cfg.Ocean.Decomp.Tiles()
	nWorkers := 2 * tiles
	ccfg := cluster.DefaultConfig(nWorkers, 1)
	ccfg.Workers = workers
	cl, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	coupled := make([]*gcm.Coupled, nWorkers)
	var buildErr error
	cl.Start(func(w *cluster.Worker) {
		c := cfg
		if w.Rank < tiles {
			ph := physics.New(physics.Default())
			c.Atmos.Forcing = ph
			c.Physics = ph
		}
		cp, err := gcm.NewCoupled(c, lib.Bind(w))
		if err != nil {
			buildErr = err
			return
		}
		coupled[w.Rank] = cp
		cp.Run(steps)
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	h := sha256.New()
	for r, cp := range coupled {
		if cp == nil {
			t.Fatalf("worker %d did not build", r)
		}
		if err := cp.M.Checkpoint(h); err != nil {
			t.Fatalf("worker %d: checkpoint: %v", r, err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), cl.Eng.Now(), cl.Eng.Events()
}

func TestGoldenCoupledState(t *testing.T) {
	const steps = 12 // two coupling exchanges plus a fractional window
	path := filepath.Join("testdata", "golden_coupled.json")
	got := map[string]string{}
	for _, w := range []struct {
		name    string
		workers int
	}{{"inline", -1}, {"pool1", 1}, {"poolMax", 0}} {
		digest, now, events := coupledStateDigest(t, steps, w.workers)
		got["digest/"+w.name] = digest
		got["now/"+w.name] = strconv.FormatInt(int64(now), 10)
		got["events/"+w.name+"/info"] = strconv.FormatUint(events, 10)
	}

	if *updateCoupledGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to record): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for k, w := range want {
		if strings.HasSuffix(k, "/info") {
			continue // informational only
		}
		if g := got[k]; g != w {
			t.Errorf("%s: %q = %s, want %s (state/clock drift vs the seed kernels)", path, k, g, w)
		}
	}
}
