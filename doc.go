// Package hyades is a reproduction of "A Personal Supercomputer for
// Climate Research" (Hoe, Hill, Adcroft; SC'99): a discrete-event
// simulation of the Hyades cluster — the Arctic Switch Fabric, StarT-X
// network interfaces and dual-processor SMP nodes — running a real
// finite-volume ocean/atmosphere general circulation model through the
// paper's application-specific communication primitives.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-versus-reproduction results, and the examples/ directory for
// runnable entry points.  The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation.
package hyades
