package hyades

// One benchmark per table and figure of the paper's evaluation, plus
// ablations of this reproduction's own design choices.  Benchmarks
// report the paper-relevant quantities as custom metrics (simulated
// microseconds, MFlop/s), so `go test -bench=. -benchmem` regenerates
// the evaluation in one run; the cmd/ tools print the same data as
// formatted tables.

import (
	"bytes"
	"fmt"
	"testing"

	"hyades/internal/bench"
	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/des"
	"hyades/internal/fault"
	"hyades/internal/gcm"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/solver"
	"hyades/internal/gcm/tile"
	"hyades/internal/logp"
	"hyades/internal/mpistart"
	"hyades/internal/netmodel"
	"hyades/internal/perfmodel"
	"hyades/internal/units"
	"hyades/internal/vector"
)

// BenchmarkFig2LogP regenerates the LogP table (Fig. 2).
func BenchmarkFig2LogP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := logp.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Os.Micros(), "Os8B_us")
		b.ReportMetric(rows[0].HalfRTT.Micros(), "halfRTT8B_us")
		b.ReportMetric(rows[1].HalfRTT.Micros(), "halfRTT64B_us")
	}
}

// BenchmarkFig7Bandwidth regenerates three anchor points of the
// bandwidth-vs-block-size curve (Fig. 7).
func BenchmarkFig7Bandwidth(b *testing.B) {
	r := bench.HyadesRunner{PPN: 1}
	for i := 0; i < b.N; i++ {
		oneK, err := bench.TransferBandwidth(r, 1024, 3)
		if err != nil {
			b.Fatal(err)
		}
		nineK, err := bench.TransferBandwidth(r, 9*1024, 3)
		if err != nil {
			b.Fatal(err)
		}
		peak, err := bench.TransferBandwidth(r, 128*1024, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(oneK.MBperSec(), "MBs_1KiB")
		b.ReportMetric(nineK.MBperSec(), "MBs_9KiB")
		b.ReportMetric(peak.MBperSec(), "MBs_128KiB")
	}
}

// BenchmarkSec42GlobalSum regenerates the §4.2 global-sum latencies.
func BenchmarkSec42GlobalSum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l16, err := bench.Gsum(bench.HyadesRunner{PPN: 1}, 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		l2x8, err := bench.Gsum(bench.HyadesRunner{PPN: 2}, 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(l16.Micros(), "us_16way")
		b.ReportMetric(l2x8.Micros(), "us_2x8way")
	}
}

// BenchmarkFig10Sustained regenerates the sustained-performance table:
// the simulated Hyades rates on 1 and 16 processors and the vector-
// machine roofline estimates.
func BenchmarkFig10Sustained(b *testing.B) {
	for i := 0; i < b.N; i++ {
		serialCfg := gcm.CoarseOceanConfig(tile.Decomp{NXg: 128, NYg: 64, Px: 1, Py: 1, PeriodicX: true})
		m1, elapsed, err := gcm.RunSerial(serialCfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		one := float64(m1.C.PS+m1.C.DS) / elapsed.Seconds() / 1e6
		res, err := gcm.RunParallel(8, 2, gcm.CoarseOceanConfig(bench.ScalingDecomp()), 1, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(one, "MFs_1proc")
		b.ReportMetric(res.SustainedMFlops(), "MFs_16proc")
		b.ReportMetric(res.SustainedMFlops()/one, "speedup")
		b.ReportMetric(vector.Fig10Machines()[0].SustainedGFlops()*1000, "MFs_YMP1")
	}
}

// BenchmarkFig11Params regenerates the performance-model parameters.
func BenchmarkFig11Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := bench.MeasureHyades()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.Tgsum.Micros(), "tgsum_us")
		b.ReportMetric(p.Texchxy.Micros(), "texchxy_us")
		b.ReportMetric(p.Texchxyz.Micros(), "texchxyz_atm_us")
		b.ReportMetric(p.Ocean3D.Micros(), "texchxyz_ocean_us")
	}
}

// BenchmarkValidation regenerates the §5.3 model validation: predicted
// versus simulated-observed runtime of the one-year atmosphere.
func BenchmarkValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := gcm.CoarseAtmosphereConfig(bench.ScalingDecomp())
		cfg.Forcing = physics.New(physics.Default())
		res, err := gcm.RunParallel(8, 2, cfg, 1, 4)
		if err != nil {
			b.Fatal(err)
		}
		year := res.PerStep().Minutes() * 77760
		b.ReportMetric(year, "simYear_min")
		exp, observed := perfmodel.PaperValidation()
		b.ReportMetric(exp.Trun().Minutes(), "paperModel_min")
		b.ReportMetric(observed.Minutes(), "paperObserved_min")
	}
}

// BenchmarkFig12Pfpp regenerates the Pfpp table from primitives
// measured on the three machines.
func BenchmarkFig12Pfpp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		arctic, err := bench.MeasureHyades()
		if err != nil {
			b.Fatal(err)
		}
		ge, err := bench.MeasureNet(netmodel.GigabitEthernet())
		if err != nil {
			b.Fatal(err)
		}
		fe, err := bench.MeasureNet(netmodel.FastEthernet())
		if err != nil {
			b.Fatal(err)
		}
		ra := perfmodel.Fig12Row("Arctic", arctic.Tgsum, arctic.Texchxy, arctic.Texchxyz)
		rg := perfmodel.Fig12Row("G.E.", ge.Tgsum, ge.Texchxy, ge.Texchxyz)
		rf := perfmodel.Fig12Row("F.E.", fe.Tgsum, fe.Texchxy, fe.Texchxyz)
		b.ReportMetric(ra.PfppDS, "PfppDS_Arctic")
		b.ReportMetric(rg.PfppDS, "PfppDS_GE")
		b.ReportMetric(rf.PfppDS, "PfppDS_FE")
		b.ReportMetric(ra.PfppPS, "PfppPS_Arctic")
	}
}

// BenchmarkHPVMComparison regenerates the §6 Myrinet/HPVM anchors.
func BenchmarkHPVMComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		barrier, err := bench.Gsum(bench.NetRunner{Prm: netmodel.MyrinetHPVM()}, 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		ours, err := bench.Gsum(bench.HyadesRunner{PPN: 1}, 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(barrier.Micros(), "HPVM16_us")
		b.ReportMetric(barrier.Micros()/ours.Micros(), "HPVMvsHyades_x")
	}
}

// BenchmarkAblationPreconditioner compares the DS solver with the SSOR
// and Jacobi preconditioners — the design choice that brings Ni near
// the paper's 60.
func BenchmarkAblationPreconditioner(b *testing.B) {
	run := func(pre solver.Precond) (ni float64) {
		cfg := gcm.CoarseOceanConfig(tile.Decomp{NXg: 128, NYg: 64, Px: 1, Py: 1, PeriodicX: true})
		cfg.FpsMFlops, cfg.FdsMFlops = 0, 0
		m, _, err := gcm.RunSerialWithPrecond(cfg, 4, pre)
		if err != nil {
			b.Fatal(err)
		}
		return m.Solver.MeanIters()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(solver.PrecondSSOR), "Ni_SSOR")
		b.ReportMetric(run(solver.PrecondJacobi), "Ni_Jacobi")
	}
}

// BenchmarkAblationMixMode compares sixteen workers arranged as 16
// single-processor nodes versus 8 dual-processor SMPs: the mix-mode
// shared-memory paths trade NIU contention for cheap intra-node
// exchanges.
func BenchmarkAblationMixMode(b *testing.B) {
	cfg := gcm.CoarseOceanConfig(bench.ScalingDecomp())
	for i := 0; i < b.N; i++ {
		r16x1, err := gcm.RunParallel(16, 1, cfg, 1, 3)
		if err != nil {
			b.Fatal(err)
		}
		r8x2, err := gcm.RunParallel(8, 2, cfg, 1, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r16x1.PerStep().Millis(), "ms_16x1")
		b.ReportMetric(r8x2.PerStep().Millis(), "ms_8x2")
	}
}

// BenchmarkScalingStudy regenerates the E11 strong-scaling extension's
// 16-worker point and its model prediction.
func BenchmarkScalingStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := tile.Decomp{NXg: 128, NYg: 64, Px: 4, Py: 4, PeriodicX: true}
		res, err := gcm.RunParallel(16, 1, gcm.CoarseOceanConfig(d), 1, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SustainedMFlops(), "MFs_16nodes")
		comm := res.ExchangeTime + res.GsumTime
		b.ReportMetric(100*float64(comm)/float64(comm+res.ComputeTime), "commPct")
	}
}

// BenchmarkAblationMPIvsCustom quantifies §6's central claim on
// identical simulated hardware: the application-specific global sum
// against the general-purpose MPI-StarT allreduce.
func BenchmarkAblationMPIvsCustom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		custom, err := bench.Gsum(bench.HyadesRunner{PPN: 1}, 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		mpi := measureMPIAllreduce(b, 16, 8)
		b.ReportMetric(custom.Micros(), "us_custom")
		b.ReportMetric(mpi.Micros(), "us_mpistart")
		b.ReportMetric(mpi.Micros()/custom.Micros(), "generalityTax_x")
	}
}

// ---- Hot-path microbenchmarks ----
//
// Unlike the figure benchmarks above, which rebuild a machine every
// iteration (so allocs/op is dominated by construction), these run b.N
// operations inside one simulated machine: ns/op and allocs/op measure
// the per-operation cost of the communication hot path itself, and the
// simulated_us metric reports the virtual time per operation.

// BenchmarkExchange measures one pairwise 1-KiB VI-mode exchange.
func BenchmarkExchange(b *testing.B) {
	b.ReportAllocs()
	cl, err := cluster.New(cluster.DefaultConfig(2, 1))
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		b.Fatal(err)
	}
	var elapsed units.Time
	cl.Start(func(w *cluster.Worker) {
		ep := lib.Bind(w)
		peer := 1 - w.Rank
		buf := make([]byte, 1024)
		layout := comm.Contiguous(1024, true)
		ep.Exchange(peer, buf, layout) // warm-up
		ep.Barrier()
		start := ep.Now()
		for i := 0; i < b.N; i++ {
			ep.Exchange(peer, buf, layout)
		}
		if w.Rank == 0 {
			elapsed = ep.Now() - start
		}
	})
	if err := cl.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(elapsed.Micros()/float64(b.N), "simulated_us")
}

// BenchmarkGlobalSum measures one 16-way butterfly global sum.
func BenchmarkGlobalSum(b *testing.B) {
	b.ReportAllocs()
	cl, err := cluster.New(cluster.DefaultConfig(16, 1))
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		b.Fatal(err)
	}
	var elapsed units.Time
	cl.Start(func(w *cluster.Worker) {
		ep := lib.Bind(w)
		ep.GlobalSum(1) // warm-up alignment
		start := ep.Now()
		for i := 0; i < b.N; i++ {
			ep.GlobalSum(float64(i))
		}
		if w.Rank == 0 {
			elapsed = ep.Now() - start
		}
	})
	if err := cl.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(elapsed.Micros()/float64(b.N), "simulated_us")
}

// BenchmarkSchedule measures the raw event-scheduler hot loop —
// enqueue, dequeue and a periodic arm-and-cancel — against a steady
// backlog of 1e3, 1e5 and 1e7 pending events, for both the ladder
// queue (the default) and the binary heap it replaced.  The
// events_per_sec metric counts scheduler operations (pushes + pops,
// including the cancel pairs); the ladder's flat profile against the
// heap's log-N climb is the scheduler-replacement headline.
func BenchmarkSchedule(b *testing.B) {
	for _, s := range []struct {
		name string
		kind des.SchedulerKind
	}{{"ladder", des.SchedLadder}, {"heap", des.SchedHeap}} {
		for _, pending := range []int{1e3, 1e5, 1e7} {
			b.Run(fmt.Sprintf("%s/pending=%.0e", s.name, float64(pending)), func(b *testing.B) {
				benchSchedule(b, s.kind, pending)
			})
		}
	}
}

func benchSchedule(b *testing.B, kind des.SchedulerKind, pending int) {
	b.ReportAllocs()
	e := des.NewEngineWithScheduler(kind)
	defer e.Close()
	noop := func() {}
	// xorshift keeps the offered timestamp stream identical across
	// scheduler kinds without math/rand overhead in the hot loop.
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() units.Time {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return 1 + units.Time(rng%uint64(10*units.Millisecond))
	}
	for i := 0; i < pending; i++ {
		e.Schedule(next(), noop)
	}
	// One pop outside the timer absorbs the ladder's initial
	// top-to-rung conversion of the prefilled backlog; the loop then
	// measures the steady state rather than a startup transient.
	e.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(next(), noop)
		if i%8 == 0 {
			e.After(next(), noop).Cancel()
		}
		e.Step()
	}
	b.StopTimer()
	ops := 2*float64(b.N) + 2*float64((b.N+7)/8)
	b.ReportMetric(ops/b.Elapsed().Seconds(), "events_per_sec")
}

// BenchmarkCoupledStep measures one step of a 16-rank coupled
// ocean–atmosphere run, across host worker-pool sizes: "inline" runs
// every compute phase on the DES baton, "pool1" pays the pool's
// handoff with no parallelism, "poolMax" uses GOMAXPROCS workers.  The
// inline/poolMax ratio of ns/op is the wall-clock speedup of the
// parallel execution layer (simulated time is identical by contract).
func BenchmarkCoupledStep(b *testing.B) {
	for _, c := range []struct {
		name    string
		workers int
	}{{"inline", -1}, {"pool1", 1}, {"poolMax", 0}} {
		b.Run(c.name, func(b *testing.B) { benchCoupledSteps(b, c.workers) })
	}
}

func benchCoupledSteps(b *testing.B, workers int) {
	b.ReportAllocs()
	d := tile.Decomp{NXg: 32, NYg: 16, Px: 4, Py: 2, PeriodicX: true}
	cfg := gcm.DefaultCoupledConfig(d)
	cfg.Ocean.Grid.NX, cfg.Ocean.Grid.NY = 32, 16
	cfg.Ocean.Grid.NZ = 4
	cfg.Ocean.Grid.DZ = []float64{250, 500, 1000, 2250}
	cfg.Atmos.Grid.NX, cfg.Atmos.Grid.NY = 32, 16
	cfg.CoupleEvery = 5

	tiles := cfg.Ocean.Decomp.Tiles()
	nWorkers := 2 * tiles
	ccfg := cluster.DefaultConfig(nWorkers, 1)
	ccfg.Workers = workers
	cl, err := cluster.New(ccfg)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		b.Fatal(err)
	}
	var buildErr error
	cl.Start(func(w *cluster.Worker) {
		c := cfg
		if w.Rank < tiles {
			ph := physics.New(physics.Default())
			c.Atmos.Forcing = ph
			c.Physics = ph
		}
		cp, err := gcm.NewCoupled(c, lib.Bind(w))
		if err != nil {
			buildErr = err
			return
		}
		cp.Run(b.N)
	})
	if err := cl.Run(); err != nil {
		b.Fatal(err)
	}
	if buildErr != nil {
		b.Fatal(buildErr)
	}
	b.ReportMetric(cl.Eng.Now().Millis()/float64(b.N), "simulated_ms")
	// The provisioning metric for the Fig. 9 science run: model years
	// integrated per hour of host wall clock, at this benchmark's grid
	// and time step.
	modelYears := float64(b.N) * cfg.Ocean.Kernel.Dt / (360 * 86400)
	if hours := b.Elapsed().Hours(); hours > 0 {
		b.ReportMetric(modelYears/hours, "model_years_per_wall_hour")
	}
}

func measureMPIAllreduce(b *testing.B, n, reps int) units.Time {
	cl, err := cluster.New(cluster.DefaultConfig(n, 1))
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	var start, end units.Time
	cl.Start(func(w *cluster.Worker) {
		c, err := mpistart.New(w, n)
		if err != nil {
			b.Error(err)
			return
		}
		c.Barrier(50)
		if c.Rank() == 0 {
			start = w.Proc.Now()
		}
		for i := 0; i < reps; i++ {
			c.Allreduce(1, 60+2*i)
		}
		if c.Rank() == 0 {
			end = w.Proc.Now()
		}
	})
	if err := cl.Run(); err != nil {
		b.Fatal(err)
	}
	return (end - start) / units.Time(reps)
}

// The crash-recovery benchmarks price the survival contract: what a
// checkpoint costs to take, what a restore costs to load, and what a
// whole crash-detect-rollback-replay cycle costs in virtual time.

// BenchmarkCheckpointWrite measures serializing one tile's full
// prognostic state (the per-rank cost of a coordinated checkpoint).
func BenchmarkCheckpointWrite(b *testing.B) {
	b.ReportAllocs()
	d := tile.Decomp{NXg: 32, NYg: 32, Px: 1, Py: 1}
	cfg := gcm.GyreConfig(32, 32, 3, d)
	m, _, err := gcm.RunSerial(cfg, 2)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := m.Checkpoint(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkCheckpointRestore measures loading that state back,
// including the halo exchange that brings the overlap region current.
func BenchmarkCheckpointRestore(b *testing.B) {
	b.ReportAllocs()
	d := tile.Decomp{NXg: 32, NYg: 32, Px: 1, Py: 1}
	cfg := gcm.GyreConfig(32, 32, 3, d)
	m, _, err := gcm.RunSerial(cfg, 2)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		b.Fatal(err)
	}
	m2, err := gcm.New(cfg, &comm.Serial{})
	if err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m2.Restore(bytes.NewReader(blob)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(blob)))
}

// BenchmarkRecoveryOverhead measures one full crash cycle on a 4-node
// gyre — detection, rendezvous, epoch reset, restore, replay — and
// reports the availability metrics the report table prints: virtual
// recovery stall, rolled-back integration time, and checkpoint volume.
func BenchmarkRecoveryOverhead(b *testing.B) {
	d := tile.Decomp{NXg: 32, NYg: 32, Px: 2, Py: 2}
	cfg := gcm.GyreConfig(32, 32, 3, d)
	fc := fault.Config{Seed: 7, NodeOutages: []fault.NodeOutage{
		{Node: "1", From: 200 * units.Millisecond, Until: 201 * units.Millisecond},
	}}
	var rec gcm.RecoveryResult
	for i := 0; i < b.N; i++ {
		res, err := gcm.RunParallelOpts(4, 1, cfg, 0, 12,
			gcm.ParallelOpts{Fault: fc, CheckpointEvery: 3})
		if err != nil {
			b.Fatal(err)
		}
		if res.Recovery.Restarts != 1 {
			b.Fatalf("staged 1 crash, survived %d", res.Recovery.Restarts)
		}
		rec = res.Recovery
	}
	b.ReportMetric(rec.RecoveryTime.Micros(), "recovery_us")
	b.ReportMetric(rec.LostVirtual.Micros(), "lost_virtual_us")
	b.ReportMetric(float64(rec.LostFlops), "replayed_flops")
	b.ReportMetric(float64(rec.CheckpointBytes), "ckpt_bytes")
}
