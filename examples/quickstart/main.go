// Quickstart: a wind-driven double-gyre ocean box on a simulated
// four-node Hyades cluster.
//
// This is the smallest end-to-end use of the library's public pieces:
// build a cluster, bind the communication library, decompose the
// domain, run the model, and read back diagnostics.  The simulated
// time, flop counts and communication statistics all come from the
// discrete-event machine model — the numerics are computed for real.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/gcm"
	"hyades/internal/gcm/tile"
	"hyades/internal/report"
)

func main() {
	// A 64x64x4 beta-plane ocean box over 2x2 tiles, one per node.
	decomp := tile.Decomp{NXg: 64, NYg: 64, Px: 2, Py: 2}
	cfg := gcm.GyreConfig(64, 64, 4, decomp)

	// The machine: four SMPs, one processor each, joined by the Arctic
	// Switch Fabric through StarT-X NIUs.
	cl, err := cluster.New(cluster.DefaultConfig(4, 1))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		log.Fatal(err)
	}

	const steps = 240 // about 3 model days at dt = 1200 s
	models := make([]*gcm.Model, 4)
	cl.Start(func(w *cluster.Worker) {
		ep := lib.Bind(w)
		m, err := gcm.New(cfg, ep)
		if err != nil {
			log.Fatal(err)
		}
		models[w.Rank] = m
		for i := 0; i < steps; i++ {
			m.Step()
			if w.Rank == 0 && (i+1)%60 == 0 {
				fmt.Printf("step %3d  t=%v  KE=%.3e m^5/s^2  Ni=%d\n",
					i+1, ep.Now(), m.TotalKE(), m.Solver.LastIters)
			} else if w.Rank != 0 && (i+1)%60 == 0 {
				m.TotalKE() // collective: every worker participates
			}
		}
		// Gather the surface temperature on rank 0 for a quick-look.
		if g := m.Halo.Gather3Level(m.S.Theta, 0); g != nil {
			fmt.Println("\nsea-surface temperature after the run (north up):")
			fmt.Print(report.FieldASCII(g, 64))
		}
		// Diagnostics are collectives: every worker participates,
		// rank 0 reports.
		div := m.MaxDivergence()
		if w.Rank == 0 {
			fmt.Printf("\nper-worker flops: PS=%d DS=%d; divergence after projection: %.2e\n",
				m.C.PS, m.C.DS, div)
			s := ep.Stats()
			fmt.Printf("rank 0 time split: compute=%v exchange=%v globalsum=%v\n",
				s.ComputeTime, s.ExchangeTime, s.GsumTime)
		}
	})
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
	_ = models
}
