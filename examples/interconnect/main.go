// Interconnect: the paper's headline claim in action.  The identical
// GCM configuration runs over four machines — the Arctic Switch Fabric
// (simulated from published hardware constants), modelled Gigabit and
// Fast Ethernet, and a Myrinet/HPVM cluster — and the per-step time
// splits into compute and communication, making Fig. 12's Pfpp
// analysis concrete: commodity processors with commodity interconnects
// leave fine-grain climate models starved.
//
//	go run ./examples/interconnect
package main

import (
	"fmt"
	"log"

	"hyades/internal/gcm"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
	"hyades/internal/netmodel"
	"hyades/internal/report"
)

func main() {
	// The 2.8125-degree atmosphere over 8 workers (the Fig. 12 config,
	// at one tile per SMP).
	d := tile.Decomp{NXg: 128, NYg: 64, Px: 4, Py: 2, PeriodicX: true}
	mk := func() gcm.Config {
		cfg := gcm.CoarseAtmosphereConfig(d)
		cfg.Forcing = physics.New(physics.Default())
		return cfg
	}
	const warmup, steps = 1, 4

	t := report.NewTable("The same 2.8125-degree atmosphere on four interconnects",
		"machine", "time/step", "compute", "comm", "comm %", "sustained MF/s")
	add := func(name string, res *gcm.Result) {
		comm := res.ExchangeTime + res.GsumTime
		t.Addf("%s|%v|%v|%v|%.0f%%|%.0f",
			name, res.PerStep(), res.ComputeTime, comm,
			100*float64(comm)/float64(comm+res.ComputeTime),
			res.SustainedMFlops())
	}

	res, err := gcm.RunParallel(8, 1, mk(), warmup, steps)
	if err != nil {
		log.Fatal(err)
	}
	add("Arctic (Hyades)", res)

	for _, prm := range []netmodel.Params{
		netmodel.MyrinetHPVM(), netmodel.GigabitEthernet(), netmodel.FastEthernet(),
	} {
		res, err := gcm.RunParallelNet(prm, mk(), warmup, steps)
		if err != nil {
			log.Fatal(err)
		}
		add(prm.Name, res)
	}
	fmt.Print(t)
	fmt.Println("\nThe ordering and the growing communication share reproduce the paper's")
	fmt.Println("conclusion: only the application-specific primitives on a low-overhead")
	fmt.Println("interconnect keep this fine-grain model compute-bound.")
}
