// Coupled: a synchronous ocean-atmosphere simulation in the paper's
// production arrangement — each isomorph occupies half of the cluster,
// and the two exchange boundary conditions (SST one way; wind stress
// and heat flux the other) once per coupling interval.
//
// To keep the example snappy it runs a reduced 64x32 grid over 8
// workers (4 per component) for a few model days; cmd/figure9 runs the
// full 2.8125-degree configuration and writes the Fig. 9 plates.
//
//	go run ./examples/coupled
package main

import (
	"fmt"
	"log"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/gcm"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
	"hyades/internal/report"
)

func main() {
	d := tile.Decomp{NXg: 64, NYg: 32, Px: 2, Py: 2, PeriodicX: true}
	cfg := gcm.DefaultCoupledConfig(d)
	cfg.Ocean.Grid.NX, cfg.Ocean.Grid.NY = 64, 32
	cfg.Atmos.Grid.NX, cfg.Atmos.Grid.NY = 64, 32
	cfg.CoupleEvery = 53 // ~4 couplings per model day

	const steps = 4 * 213 // about 4 model days
	nWorkers := 2 * d.Tiles()

	cl, err := cluster.New(cluster.DefaultConfig(nWorkers, 1))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		log.Fatal(err)
	}
	cl.Start(func(w *cluster.Worker) {
		// Each atmosphere worker holds its own physics instance so the
		// coupler can hand it a tile-local SST.
		c := cfg
		if w.Rank < d.Tiles() {
			ph := physics.New(physics.Default())
			c.Atmos.Forcing = ph
			c.Physics = ph
		}
		cp, err := gcm.NewCoupled(c, lib.Bind(w))
		if err != nil {
			log.Fatal(err)
		}
		cp.Run(steps)

		m := cp.M
		if cp.IsOcean {
			if g := m.Halo.Gather3Level(m.S.Theta, 0); g != nil {
				fmt.Printf("OCEAN after %d steps (%v simulated): SST (north up)\n", steps, m.EP.Now())
				fmt.Print(report.FieldASCII(g, 64))
			}
		} else {
			if g := m.Halo.Gather3Level(m.S.U, 1); g != nil {
				fmt.Printf("\nATMOSPHERE: upper-level zonal wind (north up)\n")
				fmt.Print(report.FieldASCII(g, 64))
				fmt.Printf("\natmosphere rank 0 stats: %d exchanges, %d global sums, comm time %v\n",
					m.EP.Stats().Exchanges, m.EP.Stats().GlobalSums, m.EP.Stats().CommTime())
			}
		}
	})
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
}
