package hyades

// End-to-end integration tests: full simulated-machine runs of the
// model scenarios the examples and figure tools exercise, with
// cross-cutting assertions (numerics sane, timing accounted, both
// machine families agree on the physics).

import (
	"math"
	"testing"

	"hyades/internal/bench"
	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/gcm"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
	"hyades/internal/netmodel"
	"hyades/internal/units"
)

// TestGyreSpinUpIntegration runs the quickstart scenario: the gyre
// must spin up, stay bounded, remain divergence-free, and account all
// virtual time to compute or communication.
func TestGyreSpinUpIntegration(t *testing.T) {
	d := tile.Decomp{NXg: 32, NYg: 32, Px: 2, Py: 2}
	cfg := gcm.GyreConfig(32, 32, 3, d)
	res, err := gcm.RunParallel(4, 1, cfg, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	var ke, div float64
	cl, err := cluster.New(cluster.DefaultConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(func(w *cluster.Worker) {
		m, err := gcm.New(cfg, lib.Bind(w))
		if err != nil {
			t.Error(err)
			return
		}
		m.Run(60)
		k := m.TotalKE()
		dv := m.MaxDivergence()
		if w.Rank == 0 {
			ke, div = k, dv
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ke) || ke <= 0 || ke > 1e18 {
		t.Fatalf("KE = %g", ke)
	}
	if div > 1e-8 {
		t.Fatalf("divergence = %g", div)
	}
	if res.Elapsed <= 0 || res.ComputeTime <= 0 || res.ExchangeTime <= 0 {
		t.Fatalf("timing not accounted: %+v", res)
	}
}

// TestPhysicsAgreesAcrossMachines: the same atmosphere stepped over
// the Arctic machine and over modelled Gigabit Ethernet must produce
// identical physics (only the virtual clock differs) — the machine
// model may never leak into the numerics.
func TestPhysicsAgreesAcrossMachines(t *testing.T) {
	d := tile.Decomp{NXg: 32, NYg: 16, Px: 2, Py: 2, PeriodicX: true}
	mk := func() gcm.Config {
		cfg := gcm.CoarseAtmosphereConfig(d)
		cfg.Grid.NX, cfg.Grid.NY = 32, 16
		cfg.Forcing = physics.New(physics.Default())
		return cfg
	}
	const steps = 6
	arctic, err := gcm.RunParallel(4, 1, mk(), 0, steps)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := gcm.RunParallelNet(netmodel.GigabitEthernet(), mk(), 0, steps)
	if err != nil {
		t.Fatal(err)
	}
	if ge.Elapsed <= arctic.Elapsed {
		t.Errorf("GE (%v) should be slower than Arctic (%v)", ge.Elapsed, arctic.Elapsed)
	}
	worst := 0.0
	for r := range arctic.Models {
		ma, mg := arctic.Models[r], ge.Models[r]
		for k := 0; k < ma.G.NZ; k++ {
			for j := 0; j < ma.G.NY; j++ {
				for i := 0; i < ma.G.NX; i++ {
					if d := math.Abs(ma.S.Theta.At(i, j, k) - mg.S.Theta.At(i, j, k)); d > worst {
						worst = d
					}
					if d := math.Abs(ma.S.U.At(i, j, k) - mg.S.U.At(i, j, k)); d > worst {
						worst = d
					}
				}
			}
		}
	}
	if worst > 1e-12 {
		t.Fatalf("machine model leaked into the numerics: worst field deviation %g", worst)
	}
}

// TestCoupledFigure9Integration runs a short figure-9-style coupled
// simulation and checks the gathered plates are physically plausible.
func TestCoupledFigure9Integration(t *testing.T) {
	d := tile.Decomp{NXg: 32, NYg: 16, Px: 2, Py: 1, PeriodicX: true}
	cfg := gcm.DefaultCoupledConfig(d)
	cfg.Ocean.Grid.NX, cfg.Ocean.Grid.NY = 32, 16
	cfg.Atmos.Grid.NX, cfg.Atmos.Grid.NY = 32, 16
	cfg.CoupleEvery = 20
	nWorkers := 2 * d.Tiles()
	cl, err := cluster.New(cluster.DefaultConfig(nWorkers, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sstMean float64
	var windRange float64
	cl.Start(func(w *cluster.Worker) {
		c := cfg
		if w.Rank < d.Tiles() {
			ph := physics.New(physics.Default())
			c.Atmos.Forcing = ph
			c.Physics = ph
		}
		cp, err := gcm.NewCoupled(c, lib.Bind(w))
		if err != nil {
			t.Error(err)
			return
		}
		cp.Run(60)
		m := cp.M
		if cp.IsOcean {
			if g := m.Halo.Gather3Level(m.S.Theta, 0); g != nil {
				sum, n := 0.0, 0
				for j := 0; j < g.NY; j++ {
					for i := 0; i < g.NX; i++ {
						sum += g.At(i, j)
						n++
					}
				}
				sstMean = sum / float64(n)
			}
		} else {
			if g := m.Halo.Gather3Level(m.S.U, 1); g != nil {
				lo, hi := math.Inf(1), math.Inf(-1)
				for j := 0; j < g.NY; j++ {
					for i := 0; i < g.NX; i++ {
						lo = math.Min(lo, g.At(i, j))
						hi = math.Max(hi, g.At(i, j))
					}
				}
				windRange = hi - lo
			}
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if sstMean < -5 || sstMean > 40 || math.IsNaN(sstMean) {
		t.Fatalf("mean SST = %g C", sstMean)
	}
	if math.IsNaN(windRange) || windRange < 0 {
		t.Fatalf("wind range = %g", windRange)
	}
}

// TestScalingMonotonic: more workers must not make the simulated
// machine slower per step on the production problem.
func TestScalingMonotonic(t *testing.T) {
	per := func(workers, px, py int) units.Time {
		d := tile.Decomp{NXg: 128, NYg: 64, Px: px, Py: py, PeriodicX: true}
		cfg := gcm.CoarseOceanConfig(d)
		res, err := gcm.RunParallel(workers, 1, cfg, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerStep()
	}
	t4 := per(4, 2, 2)
	t16 := per(16, 4, 4)
	if t16 >= t4 {
		t.Fatalf("no strong scaling: %v at 4 workers, %v at 16", t4, t16)
	}
	if ratio := float64(t4) / float64(t16); ratio < 2 {
		t.Fatalf("scaling 4->16 only %.1fx", ratio)
	}
}

// TestPrimitiveBenchmarksAgainstPerfModel closes the loop of §5.2: a
// short timed run's communication share must be within a factor of the
// share the analytic model predicts from measured primitives.
func TestPrimitiveBenchmarksAgainstPerfModel(t *testing.T) {
	cfg := gcm.CoarseOceanConfig(bench.ScalingDecomp())
	res, err := gcm.RunParallel(16, 1, cfg, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	measuredShare := float64(res.ExchangeTime+res.GsumTime) /
		float64(res.ExchangeTime+res.GsumTime+res.ComputeTime)
	if measuredShare < 0.05 || measuredShare > 0.8 {
		t.Fatalf("communication share %.2f outside plausible band", measuredShare)
	}
}

// TestWholeStackDeterminism: two identical parallel runs must agree
// bit-for-bit in both physics and virtual time — the property that
// makes every number in EXPERIMENTS.md reproducible.
func TestWholeStackDeterminism(t *testing.T) {
	run := func() (*gcm.Result, float64) {
		d := tile.Decomp{NXg: 32, NYg: 16, Px: 2, Py: 2, PeriodicX: true}
		cfg := gcm.CoarseAtmosphereConfig(d)
		cfg.Grid.NX, cfg.Grid.NY = 32, 16
		cfg.Forcing = physics.New(physics.Default())
		res, err := gcm.RunParallel(4, 1, cfg, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, m := range res.Models {
			for k := 0; k < m.G.NZ; k++ {
				for j := 0; j < m.G.NY; j++ {
					for i := 0; i < m.G.NX; i++ {
						sum += m.S.U.At(i, j, k) * float64(1+i+j*31+k*977)
					}
				}
			}
		}
		return res, sum
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1.Elapsed != r2.Elapsed {
		t.Fatalf("virtual time differs: %v vs %v", r1.Elapsed, r2.Elapsed)
	}
	if s1 != s2 {
		t.Fatalf("physics differs: %g vs %g", s1, s2)
	}
	if r1.TotalPS != r2.TotalPS || r1.TotalDS != r2.TotalDS {
		t.Fatal("flop counts differ")
	}
}
